"""Tests for the memory system and the 28nm area/energy models."""

import pytest

from repro.arch.config import BufferConfig, DRAMConfig, ProsperityConfig
from repro.arch.energy import (
    EnergyModel,
    area_model,
    sram_energy_per_byte,
)
from repro.arch.memory import Buffer, MemorySystem


class TestConfig:
    def test_defaults_match_table3(self):
        config = ProsperityConfig()
        assert config.tile_m == 256 and config.tile_n == 128 and config.tile_k == 16
        assert config.num_pes == 128
        assert config.buffers.spike_bytes == 8 * 1024
        assert config.buffers.weight_bytes == 32 * 1024
        assert config.buffers.output_bytes == 96 * 1024

    def test_rejects_n_above_pes(self):
        with pytest.raises(ValueError):
            ProsperityConfig(tile_n=256, num_pes=128)

    def test_with_tile_updates_tcam(self):
        config = ProsperityConfig().with_tile(m=512)
        assert config.tile_m == 512 and config.tcam_entries == 512

    def test_dram_bytes_per_cycle(self):
        dram = DRAMConfig(bandwidth_bytes_per_s=64e9)
        assert dram.bytes_per_cycle(500e6) == pytest.approx(128.0)


class TestBuffers:
    def test_overflow_detection(self):
        buffer = Buffer("test", 1024)
        buffer.check_fits(1024)
        with pytest.raises(ValueError):
            buffer.check_fits(1025)

    def test_table3_tiles_fit_default_buffers(self):
        MemorySystem(ProsperityConfig()).validate_tiles()

    def test_oversized_tile_rejected(self):
        config = ProsperityConfig(
            tile_m=1024, tile_k=64,
            buffers=BufferConfig(spike_bytes=1024),
            tcam_entries=1024,
        )
        with pytest.raises(ValueError):
            MemorySystem(config).validate_tiles()

    def test_access_counters(self):
        buffer = Buffer("b", 128)
        buffer.read(10)
        buffer.write(6)
        assert buffer.reads_bytes == 10 and buffer.writes_bytes == 6


class TestTraffic:
    def test_weight_reload_per_m_tile(self):
        memory = MemorySystem(ProsperityConfig())
        single = memory.workload_traffic(256, 512, 128)
        double = memory.workload_traffic(512, 512, 128)
        assert double.weight_bytes == pytest.approx(2 * single.weight_bytes)

    def test_spike_traffic_is_bit_packed(self):
        memory = MemorySystem(ProsperityConfig())
        traffic = memory.workload_traffic(256, 512, 128)
        assert traffic.spike_bytes == pytest.approx(256 * 512 / 8)

    def test_dram_cycles_scale_with_traffic(self):
        memory = MemorySystem(ProsperityConfig())
        small = memory.dram_cycles(memory.workload_traffic(256, 256, 128))
        large = memory.dram_cycles(memory.workload_traffic(2560, 256, 128))
        assert large > small


class TestAreaModel:
    def test_total_close_to_paper(self):
        """Fig. 10a: 0.529 mm^2 total."""
        breakdown = area_model(ProsperityConfig())
        assert breakdown.total == pytest.approx(0.529, rel=0.1)

    def test_component_proportions(self):
        """Buffers dominate; Dispatcher is the largest logic block."""
        breakdown = area_model(ProsperityConfig())
        assert breakdown.buffers > 0.5 * breakdown.total * 0.9
        logic = [breakdown.detector, breakdown.pruner, breakdown.processor]
        assert breakdown.dispatcher > max(breakdown.detector, breakdown.pruner)
        assert all(a > 0 for a in logic)

    def test_area_grows_superlinearly_in_m(self):
        """Fig. 7: TCAM + sorter area grows super-linearly with tile m."""
        base = area_model(ProsperityConfig()).total
        doubled = area_model(ProsperityConfig().with_tile(m=512)).total
        quadrupled = area_model(ProsperityConfig().with_tile(m=1024)).total
        assert (quadrupled - doubled) > (doubled - base)

    def test_as_dict_keys(self):
        breakdown = area_model(ProsperityConfig())
        assert set(breakdown.as_dict()) == {
            "detector", "pruner", "dispatcher", "processor",
            "neuron_sfu", "buffers", "other",
        }


class TestEnergyModel:
    def test_sram_energy_grows_with_capacity(self):
        assert sram_energy_per_byte(96 * 1024) > sram_energy_per_byte(8 * 1024)

    def test_tcam_search_energy_scales_with_entries(self):
        small = EnergyModel(ProsperityConfig())
        large = EnergyModel(ProsperityConfig().with_tile(m=512))
        assert large.tcam_search() == pytest.approx(2 * small.tcam_search())

    def test_static_energy_linear_in_cycles(self):
        model = EnergyModel(ProsperityConfig())
        assert model.static_energy_pj(2000) == pytest.approx(
            2 * model.static_energy_pj(1000)
        )
