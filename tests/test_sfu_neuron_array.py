"""Tests for the Spiking Neuron Array and Special Function Unit models."""

import numpy as np
import pytest

from repro.arch.config import ProsperityConfig
from repro.arch.neuron_array import NeuronArray
from repro.arch.sfu import SFU


class TestNeuronArray:
    def test_throughput_32_per_cycle(self):
        array = NeuronArray(ProsperityConfig())
        assert array.cells == 32
        assert array.cycles(3200) == pytest.approx(100.0)

    def test_fire_binary(self, rng):
        array = NeuronArray(ProsperityConfig())
        spikes = array.fire(rng.normal(size=(4, 16)) * 3)
        assert spikes.dtype == bool

    def test_fire_respects_threshold(self):
        array = NeuronArray(ProsperityConfig())
        currents = np.array([[0.2, 5.0]])
        spikes = array.fire(currents, threshold=1.0)
        assert not spikes[0, 0] and spikes[0, 1]


class TestSFU:
    def test_softmax_cycles_scale(self):
        sfu = SFU(ProsperityConfig())
        assert sfu.softmax_cycles(10, 10) < sfu.softmax_cycles(20, 10)

    def test_layer_norm_cycles_positive(self):
        sfu = SFU(ProsperityConfig())
        assert sfu.layer_norm_cycles(64, 384) > 0

    def test_softmax_reference_rows_sum_to_one(self, rng):
        probs = SFU.softmax_reference(rng.normal(size=(5, 7)))
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0)

    def test_layer_norm_reference_normalizes(self, rng):
        normed = SFU.layer_norm_reference(rng.normal(loc=5.0, size=(4, 32)))
        np.testing.assert_allclose(normed.mean(axis=-1), 0.0, atol=1e-9)
