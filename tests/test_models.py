"""Tests for the SNN model zoo (small presets)."""

import numpy as np
import pytest

from repro.snn.models import MODEL_BUILDERS, TRANSFORMER_MODELS, build_model
from repro.workloads import get_trace


class TestRegistry:
    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("mobilenet", "cifar10")

    def test_all_models_registered(self):
        expected = {
            "vgg16", "vgg9", "resnet18", "resnet19", "lenet5", "alexnet",
            "spikformer", "sdt", "spikebert", "spikingbert",
            "tcres8", "recurrent",
        }
        assert set(MODEL_BUILDERS) == expected


class TestCNNTraces:
    @pytest.mark.parametrize("name", ["vgg9", "resnet18", "lenet5", "alexnet"])
    def test_trace_produces_binary_workloads(self, name):
        dataset = "mnist" if name == "lenet5" else "cifar10"
        trace = get_trace(name, dataset, preset="small")
        assert len(trace) > 0
        for workload in trace.workloads:
            assert workload.spikes.bits.dtype == bool
            assert workload.n > 0
            assert 0.0 <= workload.bit_density <= 1.0

    def test_vgg16_layer_count(self, vgg_trace):
        # 13 convs + 2 linear layers
        assert len(vgg_trace) == 15

    def test_vgg16_rate_profile_declines(self, vgg_trace):
        convs = [w for w in vgg_trace.workloads if w.name.startswith("conv")]
        early = np.mean([w.bit_density for w in convs[:3]])
        late = np.mean([w.bit_density for w in convs[-3:]])
        assert late < early

    def test_resnet_has_shortcut_workloads(self):
        trace = get_trace("resnet18", "cifar10", preset="small")
        assert any("shortcut" in w.name for w in trace.workloads)


class TestTransformerTraces:
    def test_spikformer_has_attention(self, transformer_trace):
        kinds = {w.kind for w in transformer_trace.workloads}
        assert kinds == {"conv", "linear", "attention"}

    def test_sdt_has_no_attention_gemm(self):
        trace = get_trace("sdt", "cifar10", preset="small")
        assert all(w.kind != "attention" for w in trace.workloads)

    def test_spikebert_rows_are_time_by_tokens(self):
        trace = get_trace("spikebert", "sst2", preset="small")
        linear = [w for w in trace.workloads if w.kind == "linear"]
        assert all(w.m == 4 * 64 for w in linear)  # T=4, L=64

    def test_dvs_dataset_runs(self):
        trace = get_trace("sdt", "cifar10dvs", preset="small")
        assert len(trace) > 0

    def test_transformer_set(self):
        assert TRANSFORMER_MODELS == {"spikformer", "sdt", "spikebert", "spikingbert"}


class TestDensityCalibration:
    @pytest.mark.parametrize(
        "name,dataset,lo,hi",
        [
            ("vgg16", "cifar10", 0.10, 0.50),
            ("resnet18", "cifar10", 0.03, 0.35),
            ("spikebert", "sst2", 0.05, 0.40),
        ],
    )
    def test_overall_density_in_plausible_band(self, name, dataset, lo, hi):
        trace = get_trace(name, dataset, preset="small")
        assert lo <= trace.bit_density <= hi
