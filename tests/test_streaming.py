"""Streaming inference (ISSUE 10): repro.streaming + the wire path.

Acceptance contract: sliding-window streaming over any source produces
records bit-identical to the batch run of the equivalent whole trace —
for every window/hop geometry (including window=1 and window > T), for
every backend (workers included), and for the recurrent source whose
hidden state genuinely crosses window boundaries; the Poisson source is
deterministic under its seed; streams ride the scheduler as first-class
``"stream"`` jobs; the ``stream_stall`` fault kind surfaces as a typed
:class:`StreamStalledError` (and recovers when the stall fits the
timeout); and ``POST /v1/streams`` carries all of the above over a real
socket with per-stream ``/metrics`` accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    RunConfig,
    ServeClient,
    ServeError,
    ServeRequestError,
    ServeUnavailable,
    Session,
    StreamRunResult,
    StreamStalledError,
)
from repro.engine import available_backends, faults
from repro.server import ReproServer
from repro.server.protocol import records_digest
from repro.streaming import PoissonEventSource, RecurrentSource, TraceReplaySource
from repro.workloads import get_trace

LENET = {
    "workload.model": "lenet5",
    "workload.dataset": "mnist",
    "scheduler.coalesce_window_ms": 0.0,
}


def stream_config(**extra) -> RunConfig:
    return RunConfig().with_overrides({**LENET, **extra})


def exhaust(generator):
    """Drain a stream generator into (chunks, StreamResult)."""
    chunks = []
    while True:
        try:
            chunks.append(next(generator))
        except StopIteration as stop:
            return chunks, stop.value


def records_by_name(report) -> dict[str, np.ndarray]:
    return {run.name: run.records for run in report.runs}


def batch_records(config: RunConfig) -> dict[str, np.ndarray]:
    with Session(config) as session:
        return records_by_name(session.run().report)


def assert_stream_matches_batch(chunks, result, reference) -> None:
    """The full identity contract: final report AND per-chunk concat."""
    streamed = records_by_name(result.report)
    assert set(streamed) == set(reference)
    for name, expected in reference.items():
        got = streamed[name]
        assert got.shape == expected.shape
        assert np.array_equal(got, expected), name
    concat: dict[str, list[np.ndarray]] = {}
    for chunk in chunks:
        for run in chunk.runs:
            if len(run.records):
                concat.setdefault(run.name, []).append(run.records)
    for name, expected in reference.items():
        pieces = concat.get(name, [])
        got = (
            np.concatenate(pieces)
            if pieces
            else np.empty(0, dtype=expected.dtype)
        )
        assert np.array_equal(got, expected), f"chunk concat for {name}"


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.clear()
    yield
    faults.clear()


class TestWindowHopGrid:
    """Every geometry streams bit-identical to batch (lenet5 T=4)."""

    @pytest.mark.parametrize(
        ("window", "hop"),
        [(1, 0), (2, 0), (3, 1), (4, 2), (99, 0)],
        ids=["w1", "w2", "w3h1", "w4h2", "w-gt-T"],
    )
    def test_stream_is_bit_identical_to_batch(self, window, hop):
        config = stream_config(**{
            "streaming.window": window,
            "streaming.hop": hop,
        })
        reference = batch_records(config)
        with Session(config) as session:
            chunks, result = exhaust(session.stream_source())
        assert_stream_matches_batch(chunks, result, reference)
        assert result.steps == 4
        assert chunks[-1].final and not any(c.final for c in chunks[:-1])
        assert [c.index for c in chunks] == list(range(len(chunks)))

    def test_windows_partition_the_stream_clock(self):
        config = stream_config(**{"streaming.window": 3})
        with Session(config) as session:
            chunks, result = exhaust(session.stream_source())
        spans = [(c.start_step, c.stop_step) for c in chunks]
        assert spans[0][0] == 0 and spans[-1][1] == result.steps
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert start == stop


class TestEveryBackend:
    @pytest.mark.parametrize("backend", available_backends())
    def test_stream_matches_batch(self, backend):
        overrides = {"engine.backend": backend, "streaming.window": 2}
        if backend == "sharded":
            overrides["engine.workers"] = 2
        config = stream_config(**overrides)
        reference = batch_records(config)
        with Session(config) as session:
            chunks, result = exhaust(session.stream_source())
        assert_stream_matches_batch(chunks, result, reference)
        assert result.report.backend == backend


class TestPoissonSource:
    def test_seeded_determinism(self):
        def make(seed: int) -> PoissonEventSource:
            return PoissonEventSource(
                rate=0.2, rows=32, cols=24, steps=6, seed=seed
            )

        first, second = make(11), make(11)
        for step in range(6):
            assert np.array_equal(
                first.emit(step)["events"], second.emit(step)["events"]
            )
        assert not np.array_equal(
            make(11).emit(0)["events"], make(12).emit(0)["events"]
        )

    def test_stream_matches_batch_of_the_same_events(self):
        config = stream_config(**{"streaming.window": 2})
        with Session(config) as session:
            source = PoissonEventSource(
                rate=0.2, rows=48, cols=32, steps=6, seed=11
            )
            oracle = PoissonEventSource(
                rate=0.2, rows=48, cols=32, steps=6, seed=11
            )
            reference = records_by_name(
                session.engine.run(oracle.batch_trace())
            )
            chunks, result = exhaust(session.stream_source(source))
        assert_stream_matches_batch(chunks, result, reference)

    def test_config_built_source_uses_streaming_knobs(self):
        config = stream_config(**{
            "streaming.source": "poisson",
            "streaming.rows": 16,
            "streaming.cols": 8,
            "streaming.steps": 4,
            "streaming.window": 3,
        })
        with Session(config) as session:
            chunks, result = exhaust(session.stream_source())
        assert result.steps == 4
        streamed = records_by_name(result.report)
        assert set(streamed) == {"events"}


class TestRecurrentSource:
    """Hidden/membrane state must genuinely cross window boundaries."""

    RECURRENT = {
        "workload.model": "recurrent",
        "workload.dataset": "speechcommands",
        "streaming.source": "recurrent",
    }

    def test_window_1_stream_matches_batch(self):
        # window=1 forces a boundary after every frame: equality with the
        # batch trace (one continuous state trajectory) proves carry.
        config = stream_config(**self.RECURRENT, **{"streaming.window": 1})
        reference = batch_records(config)
        with Session(config) as session:
            chunks, result = exhaust(session.stream_source())
        assert_stream_matches_batch(chunks, result, reference)
        assert result.windows == result.steps

    def test_source_state_evolves_across_steps(self):
        source = RecurrentSource()
        before = source.state.hidden.copy()
        source.emit(0)
        source.emit(1)
        assert not np.array_equal(before, source.state.hidden)

    def test_tcres8_replay_matches_batch(self):
        config = stream_config(**{
            "workload.model": "tcres8",
            "workload.dataset": "speechcommands",
            "streaming.window": 2,
        })
        reference = batch_records(config)
        with Session(config) as session:
            chunks, result = exhaust(session.stream_source())
        assert_stream_matches_batch(chunks, result, reference)


class TestSchedulerPaths:
    def test_session_submit_stream_kind(self):
        config = stream_config(**{"streaming.window": 2})
        reference = batch_records(config)
        with Session(config) as session:
            result = session.submit("stream").result()
        assert isinstance(result, StreamRunResult)
        streamed = records_by_name(result.report)
        for name, expected in reference.items():
            assert np.array_equal(streamed[name], expected), name

    def test_scheduler_handle_streams_chunks(self):
        from repro.api import Job, Scheduler

        config = stream_config(**{"streaming.window": 2})
        reference = batch_records(config)
        with Scheduler(config) as scheduler:
            handle = scheduler.submit(Job(kind="stream", config=config))
            chunks = list(handle.chunks())
            result = handle.result()
        assert chunks and chunks[-1].final
        assert isinstance(result, StreamRunResult)
        streamed = records_by_name(result.report)
        for name, expected in reference.items():
            assert np.array_equal(streamed[name], expected), name

    def test_replay_source_explicit_trace(self):
        config = stream_config(**{"streaming.window": 2})
        trace = get_trace("lenet5", "mnist", "small", 7)
        reference = batch_records(config)
        with Session(config) as session:
            chunks, result = exhaust(
                session.stream_source(TraceReplaySource(trace))
            )
        assert_stream_matches_batch(chunks, result, reference)


class TestStallFault:
    def test_stall_past_timeout_raises_typed_error(self):
        config = stream_config(**{
            "streaming.window": 2,
            "streaming.stall_timeout_s": 0.2,
        })
        faults.install("stream_stall:seconds=30:times=1")
        with Session(config) as session:
            generator = session.stream_source()
            with pytest.raises(StreamStalledError) as excinfo:
                exhaust(generator)
        assert isinstance(excinfo.value, TimeoutError)
        assert "lenet5" in str(excinfo.value)

    def test_stall_within_timeout_recovers_bit_identical(self):
        config = stream_config(**{
            "streaming.window": 2,
            "streaming.stall_timeout_s": 5.0,
        })
        reference = batch_records(config)
        faults.install("stream_stall:seconds=0.05:times=2")
        with Session(config) as session:
            chunks, result = exhaust(session.stream_source())
        assert_stream_matches_batch(chunks, result, reference)

    def test_stall_spec_match_scopes_by_source_name(self):
        config = stream_config(**{
            "streaming.window": 2,
            "streaming.stall_timeout_s": 0.2,
        })
        faults.install("stream_stall:seconds=30:match=some-other-source")
        with Session(config) as session:
            chunks, result = exhaust(session.stream_source())
        assert result.windows == len(chunks)


class TestWirePath:
    """POST /v1/streams end to end on a real socket."""

    def test_full_mode_is_bit_identical_to_batch(self):
        config = stream_config(**{"streaming.window": 2})
        reference = batch_records(config)
        with ReproServer(config) as server, ServeClient(server.url) as client:
            chunks, final = exhaust(client.stream(records="full"))
            concat: dict[str, list[np.ndarray]] = {}
            for chunk in chunks:
                for run in chunk.runs:
                    if run["records"] is not None and len(run["records"]):
                        concat.setdefault(run["name"], []).append(
                            run["records"]
                        )
            for name, expected in reference.items():
                got = (
                    np.concatenate(concat[name])
                    if name in concat
                    else np.empty(0, dtype=expected.dtype)
                )
                assert np.array_equal(got, expected), name
            assert final["type"] == "StreamResult"
            assert final["steps"] == 4
            for run in final["report"]["runs"]:
                assert run["records"]["blake2b"] == records_digest(
                    reference[run["name"]]
                )

    def test_digest_mode_proves_identity_without_bytes(self):
        config = stream_config(**{"streaming.window": 2})
        reference = batch_records(config)
        with ReproServer(config) as server, ServeClient(server.url) as client:
            chunks, final = exhaust(client.stream(records="digest"))
            assert all(
                run["records"] is None
                for chunk in chunks
                for run in chunk.runs
            )
            for run in final["report"]["runs"]:
                assert run["records"]["blake2b"] == records_digest(
                    reference[run["name"]]
                )

    def test_metrics_account_streams_and_windows(self):
        config = stream_config(**{"streaming.window": 2})
        with ReproServer(config) as server, ServeClient(server.url) as client:
            chunks, _ = exhaust(client.stream(records="none"))
            streams = client.metrics()["server"]["streams"]
            assert streams["total"] == 1
            assert streams["completed"] == 1
            assert streams["failed"] == 0
            assert streams["windows_total"] == len(chunks)
            assert streams["window_latency_ms"]["count"] == len(chunks)
            assert streams["last_dedup_ratio"] >= 1.0

    def test_bad_records_mode_is_preadmission_400(self):
        config = stream_config()
        with ReproServer(config) as server, ServeClient(server.url) as client:
            with pytest.raises(ServeRequestError):
                exhaust(client.stream(records="bogus"))

    def test_non_stream_kind_is_preadmission_400(self):
        config = stream_config()
        with ReproServer(config) as server, ServeClient(server.url) as client:
            status, body = client._request(
                "POST", "/v1/streams", {"kind": "run"}
            )
            assert status == 400
            assert "stream" in body["error"]["message"]

    def test_draining_server_refuses_streams_503(self):
        config = stream_config()
        with ReproServer(config) as server, ServeClient(server.url) as client:
            server.request_drain()
            with pytest.raises(ServeUnavailable):
                exhaust(client.stream())

    def test_runtime_failure_arrives_in_band_and_counts_failed(self):
        config = stream_config()
        with ReproServer(config) as server, ServeClient(server.url) as client:
            with pytest.raises(ServeError):
                exhaust(client.stream(config={"workload": {"model": "nope"}}))
            streams = client.metrics()["server"]["streams"]
            assert streams["total"] == 1 and streams["failed"] == 1

    def test_stream_stall_over_the_wire_is_clean_in_band_error(self):
        config = stream_config(**{
            "streaming.window": 2,
            "streaming.stall_timeout_s": 0.2,
        })
        faults.install("stream_stall:seconds=30:times=1")
        with ReproServer(config) as server, ServeClient(server.url) as client:
            with pytest.raises(ServeError) as excinfo:
                exhaust(client.stream(records="none"))
            assert excinfo.value.error_type == "StreamStalledError"
