"""Tests for the three-way consistency harness."""

import numpy as np

from repro.arch.config import ProsperityConfig
from repro.arch.verify import verify_consistency, verify_tile


class TestVerifyTile:
    def test_clean_tile_passes(self, rng):
        config = ProsperityConfig(
            tile_m=32, tile_k=8, tile_n=8, num_pes=8, tcam_entries=32
        )
        bits = rng.random((32, 8)) < 0.3
        weights = rng.normal(size=(8, 8))
        assert verify_tile(bits, weights, config) == []


class TestVerifyConsistency:
    def test_sweep_passes(self):
        report = verify_consistency(n_tiles=6, rng=np.random.default_rng(1))
        assert report.passed
        assert report.tiles_checked == 6

    def test_extreme_densities(self):
        report = verify_consistency(
            n_tiles=4, density_range=(0.0, 1.0), rng=np.random.default_rng(2)
        )
        assert report.passed

    def test_small_tiles(self):
        report = verify_consistency(
            n_tiles=4, tile_m=4, tile_k=4, tile_n=2,
            rng=np.random.default_rng(3),
        )
        assert report.passed
