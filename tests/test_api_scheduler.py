"""Serving scheduler: coalesced batches, streaming, async, cancellation.

Acceptance contract (ISSUE 5): coalesced concurrent execution is
bit-identical to serial execution for every backend and worker count;
concurrent jobs on one sharded scheduler share a single process pool
(``pools_spawned == 1``); no job waits more than one coalescing window;
and the Future-based ``Session.submit`` contract is preserved.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro.api import (
    AsyncSession,
    EngineRunResult,
    Job,
    RunChunk,
    RunConfig,
    Scheduler,
    Session,
    StreamTimeoutError,
)

LENET = {
    "workload.model": "lenet5",
    "workload.dataset": "mnist",
    "sampling.max_tiles": 4,
}


def lenet_config(**extra) -> RunConfig:
    return RunConfig().with_overrides({**LENET, **extra})


def serial_run(config: RunConfig) -> EngineRunResult:
    """The serial baseline every coalesced result must match bit-for-bit."""
    with Session(config) as session:
        return session.run()


def assert_records_equal(mine, theirs) -> None:
    assert mine.report.total_tiles == theirs.report.total_tiles
    for a, b in zip(mine.report.runs, theirs.report.runs):
        assert a.name == b.name
        assert np.array_equal(a.records, b.records)


class TestJob:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            Job(kind="fly")

    def test_of_coercions(self):
        cfg = lenet_config()
        assert Job.of("density").kind == "density"
        assert Job.of(cfg).config is cfg
        job = Job(kind="run", config=cfg)
        assert Job.of(job) is job
        with pytest.raises(TypeError, match="expected Job"):
            Job.of(42)

    def test_stream_only_for_run(self):
        with Scheduler(lenet_config()) as scheduler:
            with pytest.raises(ValueError, match="only supported for 'run'"):
                scheduler.submit("density", stream=True)


class TestCoalescing:
    def test_submit_many_coalesces_into_one_batch(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        serial = serial_run(cfg)
        with Scheduler(cfg) as scheduler:
            handles = scheduler.submit_many([Job(config=cfg) for _ in range(4)])
            results = [handle.result() for handle in handles]
            assert scheduler.batches == 1
            assert scheduler.jobs_coalesced == 4
        for result in results:
            assert_records_equal(result, serial)
            assert result.report.plan == "trace"
            # Batch-scoped dedup: 4 identical jobs collapse >= 4x.
            assert result.report.dedup_ratio >= 4.0

    @pytest.mark.parametrize(
        "backend,workers",
        [("reference", None), ("vectorized", None), ("fused", None),
         ("sharded", 1), ("sharded", 2)],
    )
    def test_coalesced_bit_identical_every_backend(self, backend, workers):
        """Acceptance: coalesced == serial for every backend/worker count."""
        overrides = {"engine.backend": backend}
        if workers is not None:
            overrides["engine.workers"] = workers
        cfg = lenet_config(**overrides)
        serial = serial_run(cfg)
        with Scheduler(cfg) as scheduler:
            results = scheduler.gather([cfg, cfg, cfg])
        for result in results:
            assert_records_equal(result, serial)

    def test_mixed_workloads_scatter_back_per_job(self):
        """Different models in one batch: each job gets its own records."""
        lenet = lenet_config(**{"engine.backend": "fused"})
        vgg = RunConfig().with_overrides({
            "workload.model": "vgg16", "workload.dataset": "cifar10",
            "engine.backend": "fused",
        })
        serial_lenet, serial_vgg = serial_run(lenet), serial_run(vgg)
        with Scheduler(lenet) as scheduler:
            mine_lenet, mine_vgg = scheduler.gather([lenet, vgg])
            assert scheduler.batches == 1  # same engine signature
        assert_records_equal(mine_lenet, serial_lenet)
        assert_records_equal(mine_vgg, serial_vgg)

    def test_incompatible_engines_run_separately(self):
        """Different signatures never share a batch, results stay exact."""
        fused = lenet_config(**{"engine.backend": "fused"})
        vectorized = lenet_config(**{"engine.backend": "vectorized"})
        with Scheduler(fused) as scheduler:
            a, b = scheduler.gather([fused, vectorized])
            assert scheduler.jobs_coalesced == 0  # two single-job groups
        assert_records_equal(a, serial_run(fused))
        assert_records_equal(b, serial_run(vectorized))
        assert a.report.backend == "fused"
        assert b.report.backend == "vectorized"

    def test_single_job_matches_session_exactly(self):
        """A lone non-streaming job takes the plain Session.run path."""
        cfg = lenet_config(**{"engine.backend": "fused"})
        with Scheduler(cfg) as scheduler:
            result = scheduler.submit("run").result()
        assert result.report.plan == cfg.engine.plan  # honest plan mode
        assert_records_equal(result, serial_run(cfg))

    def test_verify_flag_respected_in_batch(self):
        cfg = lenet_config(**{"engine.backend": "fused", "engine.verify": True})
        with Scheduler(cfg) as scheduler:
            results = scheduler.gather([cfg, cfg])
        assert all(result.verified is True for result in results)

    def test_default_config_used_for_bare_submit(self):
        cfg = lenet_config()
        with Scheduler(cfg) as scheduler:
            result = scheduler.submit("tradeoff").result()
        assert result.config is cfg


class TestMixedKinds:
    def test_non_engine_jobs_ride_along(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        with Scheduler(cfg) as scheduler:
            run_handle = scheduler.submit("run")
            density_handle = scheduler.submit("density")
            tradeoff_handle = scheduler.submit("tradeoff")
            assert run_handle.result().report.total_tiles > 0
            assert density_handle.result().report.product_density > 0
            assert tradeoff_handle.result().result.profitable


class TestQueueBounds:
    def test_submit_blocks_until_space_frees(self):
        cfg = lenet_config()
        scheduler = Scheduler(cfg, max_inflight=1, coalesce_window_ms=50)
        try:
            first = scheduler.submit("tradeoff")
            done = threading.Event()
            extra = []

            def blocked_submit():
                extra.append(scheduler.submit("tradeoff"))
                done.set()

            thread = threading.Thread(target=blocked_submit)
            thread.start()
            assert done.wait(timeout=30)
            thread.join()
            assert first.result().result is not None
            assert extra[0].result().result is not None
            assert scheduler.jobs_submitted == 2
        finally:
            scheduler.close()

    def test_submit_after_close_raises(self):
        scheduler = Scheduler(lenet_config())
        scheduler.close()
        scheduler.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            scheduler.submit("run")

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError, match="max_inflight"):
            Scheduler(lenet_config(), max_inflight=0)
        with pytest.raises(ValueError, match="coalesce_window_ms"):
            Scheduler(lenet_config(), coalesce_window_ms=-1)


class TestCancellation:
    def test_cancel_queued_job(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        # A long window guarantees the jobs are still queued when we cancel.
        scheduler = Scheduler(cfg, coalesce_window_ms=2000)
        try:
            keep = scheduler.submit(Job(config=cfg))
            drop = scheduler.submit(Job(config=cfg))
            assert drop.cancel()
            assert drop.cancelled()
            assert_records_equal(keep.result(), serial_run(cfg))
            with pytest.raises(CancelledError):
                drop.result()
        finally:
            scheduler.close()

    def test_cancel_after_completion_fails(self):
        with Scheduler(lenet_config()) as scheduler:
            handle = scheduler.submit("tradeoff")
            handle.result()
            assert not handle.cancel()

    def test_cancelled_stream_terminates(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        scheduler = Scheduler(cfg, coalesce_window_ms=2000)
        try:
            handle = scheduler.submit("run", stream=True)
            assert handle.cancel()
            with pytest.raises(CancelledError):
                list(handle.chunks())
        finally:
            scheduler.close()


class TestFairness:
    def test_no_job_waits_more_than_one_window(self):
        """Every queued job is drained at the end of each window: a burst
        larger than any grouping heuristic completes in one dispatch."""
        cfg = lenet_config(**{"engine.backend": "fused"})
        with Scheduler(cfg, coalesce_window_ms=100) as scheduler:
            handles = scheduler.submit_many([Job(config=cfg) for _ in range(6)])
            start = time.perf_counter()
            for handle in handles:
                handle.result(timeout=60)
            elapsed = time.perf_counter() - start
            assert scheduler.batches == 1  # one window, one batch
        # Not a tight bound — just "did not serialize into 6 windows".
        assert elapsed < 60


class TestStreaming:
    def test_chunks_cover_run_bit_identically(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        serial = serial_run(cfg)
        with Scheduler(cfg) as scheduler:
            handle = scheduler.submit("run", stream=True)
            chunks = list(handle.chunks())
            final = handle.result()
        assert all(isinstance(chunk, RunChunk) for chunk in chunks)
        assert sum(chunk.tiles for chunk in chunks) == serial.report.total_tiles
        # Every workload appears exactly once across chunks, records exact.
        streamed = {
            run.name: run.records for chunk in chunks for run in chunk.runs
        }
        assert sorted(streamed) == sorted(
            run.name for run in serial.report.runs
        )
        for run in serial.report.runs:
            assert np.array_equal(streamed[run.name], run.records)
        assert_records_equal(final, serial)

    def test_chunk_grouping(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        workloads = serial_run(cfg).report.runs
        with Scheduler(cfg) as scheduler:
            handle = scheduler.submit("run", stream=True, chunk=3)
            chunks = list(handle.chunks())
        assert len(chunks) == -(-len(workloads) // 3)
        assert [chunk.index for chunk in chunks] == list(range(len(chunks)))
        assert chunks[0].stats.tiles == chunks[0].tiles

    def test_streaming_rides_in_coalesced_batch(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        serial = serial_run(cfg)
        with Scheduler(cfg) as scheduler:
            stream_handle = scheduler.submit("run", config=cfg, stream=True)
            plain = scheduler.submit_many([Job(config=cfg)])[0]
            chunks = list(stream_handle.chunks())
            assert sum(c.tiles for c in chunks) == serial.report.total_tiles
            assert_records_equal(plain.result(), serial)

    def test_non_streaming_handle_rejects_chunks(self):
        with Scheduler(lenet_config()) as scheduler:
            handle = scheduler.submit("tradeoff")
            handle.result()
            with pytest.raises(RuntimeError, match="stream=True"):
                handle.next_chunk()

    def test_next_chunk_timeout_is_a_timeout_error(self):
        """The documented contract: a timed-out ``next_chunk`` raises
        ``TimeoutError`` (same family as ``result(timeout=)``)."""
        cfg = lenet_config(**{"engine.backend": "fused"})
        scheduler = Scheduler(cfg, coalesce_window_ms=5000)
        try:
            handle = scheduler.submit("run", stream=True)
            with pytest.raises(TimeoutError) as err:
                handle.next_chunk(timeout=0.05)
            assert isinstance(err.value, StreamTimeoutError)
            assert f"#{handle.id}" in str(err.value)
            handle.cancel()
        finally:
            scheduler.close(wait=False)

    def test_next_chunk_timeout_is_not_queue_empty(self):
        """The pre-1.4 ``queue.Empty`` bridge is gone: the exception is
        a plain ``TimeoutError`` subclass and nothing else."""
        import queue

        assert not issubclass(StreamTimeoutError, queue.Empty)


class TestSharedResources:
    def test_one_pool_across_coalesced_batches(self):
        """Acceptance: one sharded pool serves every batch and job."""
        cfg = lenet_config(**{"engine.backend": "sharded",
                              "engine.workers": 2, "engine.plan": "trace"})
        with Scheduler(cfg) as scheduler:
            scheduler.gather([cfg, cfg, cfg])
            scheduler.gather([cfg, cfg])
            scheduler.submit("run").result()
            assert scheduler.pools_spawned <= 1

    def test_adopted_engine_stays_open(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        with Session(cfg) as session:
            engine = session.engine
            scheduler = Scheduler(cfg)
            scheduler.adopt_engine(cfg, engine)
            result = scheduler.submit("run").result()
            assert result.report.total_tiles > 0
            scheduler.close()
            # The session's engine survived the scheduler's close.
            assert session.run().report.total_tiles > 0

    def test_errors_delivered_via_future(self):
        bad = lenet_config(**{"workload.model": "no-such-model"})
        with Scheduler(lenet_config()) as scheduler:
            handles = scheduler.submit_many([Job(config=bad), Job(config=bad)])
            for handle in handles:
                with pytest.raises(Exception, match="no-such-model"):
                    handle.result()

    def test_bad_job_does_not_poison_its_batch(self):
        """Per-job isolation: a job whose trace cannot be built fails
        alone; the compatible jobs sharing its batch still succeed."""
        good = lenet_config(**{"engine.backend": "fused"})
        bad = good.with_overrides({"workload.model": "no-such-model"})
        serial = serial_run(good)
        with Scheduler(good) as scheduler:
            handles = scheduler.submit_many(
                [Job(config=good), Job(config=bad), Job(config=good)]
            )
            with pytest.raises(Exception, match="no-such-model"):
                handles[1].result()
            assert_records_equal(handles[0].result(), serial)
            assert_records_equal(handles[2].result(), serial)


class TestConcurrencySmoke:
    """The CI concurrency job: 8 simultaneous clients, sharded backend."""

    N_JOBS = 8

    def test_eight_concurrent_submits_sharded(self):
        cfg = lenet_config(**{"engine.backend": "sharded",
                              "engine.workers": 2, "engine.plan": "trace"})
        serial = serial_run(cfg)
        with Scheduler(cfg, coalesce_window_ms=200) as scheduler:
            handles: list = [None] * self.N_JOBS
            barrier = threading.Barrier(self.N_JOBS)

            def client(slot: int) -> None:
                barrier.wait()
                handles[slot] = scheduler.submit(Job(config=cfg))

            threads = [
                threading.Thread(target=client, args=(slot,))
                for slot in range(self.N_JOBS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            results = [handle.result(timeout=120) for handle in handles]
            assert scheduler.pools_spawned == 1
        for result in results:
            assert_records_equal(result, serial)

    def test_eight_async_jobs_sharded(self):
        cfg = lenet_config(**{"engine.backend": "sharded",
                              "engine.workers": 2, "engine.plan": "trace"})
        serial = serial_run(cfg)

        async def main():
            async with AsyncSession(cfg) as session:
                results = await session.gather(*[cfg] * self.N_JOBS)
                return results, session.scheduler.pools_spawned

        results, pools = asyncio.run(main())
        assert pools == 1
        assert len(results) == self.N_JOBS
        for result in results:
            assert_records_equal(result, serial)


class TestAsyncSession:
    def test_await_run_and_kinds(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        serial = serial_run(cfg)

        async def main():
            async with AsyncSession(cfg) as session:
                run = await session.run()
                tradeoff = await session.tradeoff()
                return run, tradeoff

        run, tradeoff = asyncio.run(main())
        assert_records_equal(run, serial)
        assert tradeoff.result.profitable

    def test_gather_coalesces(self):
        cfg = lenet_config(**{"engine.backend": "fused"})

        async def main():
            async with AsyncSession(cfg) as session:
                results = await session.gather(cfg, cfg, cfg)
                return results, session.scheduler.batches

        results, batches = asyncio.run(main())
        assert batches == 1
        assert len(results) == 3

    def test_async_stream(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        serial = serial_run(cfg)

        async def main():
            async with AsyncSession(cfg) as session:
                return [chunk async for chunk in session.stream()]

        chunks = asyncio.run(main())
        assert sum(chunk.tiles for chunk in chunks) == serial.report.total_tiles

    def test_shared_scheduler_not_closed(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        scheduler = Scheduler(cfg)
        try:
            async def main():
                async with AsyncSession(cfg, scheduler=scheduler) as session:
                    await session.run()

            asyncio.run(main())
            # Still usable after the async session exits.
            assert scheduler.submit("tradeoff").result().result is not None
        finally:
            scheduler.close()
