"""EngineReport.profile contract: stages are real, nested wall-clock.

For every backend and plan mode that reports a profile, stage times must
be non-negative, cover exactly the declared stage set, and — because
every stage timer is nested inside the run's timed window (including the
sharded backend's proportional worker attribution) — sum to no more
than the run's total wall-clock.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.spike_matrix import random_spike_matrix
from repro.engine import ProsperityEngine, ShardedBackend
from repro.engine.fused import PROFILE_STAGES
from repro.engine.planner import PLANNED_PROFILE_STAGES
from repro.snn.trace import GeMMWorkload

#: Float slop for comparing a sum of nested perf_counter intervals
#: against the enclosing interval.
EPS = 1e-6


def _trace(rng):
    return [
        GeMMWorkload(
            name=f"w{i}",
            spikes=random_spike_matrix(rows, cols, density, rng, 0.4),
            n=8,
        )
        for i, (rows, cols, density) in enumerate(
            [(512, 32, 0.3), (130, 17, 0.2), (256, 16, 0.5)]
        )
    ]


@pytest.fixture(scope="module")
def pooled_sharded():
    backend = ShardedBackend(workers=2)
    yield backend
    backend.close()


def _run(backend, plan, trace):
    engine = ProsperityEngine(backend=backend, tile_m=64, tile_k=16, plan=plan)
    start = time.perf_counter()
    report = engine.run(trace, batch=4)
    elapsed = time.perf_counter() - start
    return report, elapsed


def _assert_profile_contract(report, elapsed, declared):
    assert set(report.profile) == set(declared)
    for stage, seconds in report.profile.items():
        assert seconds >= 0.0, stage
    total_stage_seconds = sum(report.profile.values())
    # Stage timers nest inside the per-group windows that make up
    # total_seconds, which itself nests inside the outer wall-clock.
    assert total_stage_seconds <= report.total_seconds + EPS
    assert report.total_seconds <= elapsed + EPS


class TestProfileContract:
    @pytest.mark.parametrize("plan", ["matrix", "trace"])
    def test_fused(self, rng, plan):
        report, elapsed = _run("fused", plan, _trace(rng))
        declared = PLANNED_PROFILE_STAGES if plan == "trace" else PROFILE_STAGES
        _assert_profile_contract(report, elapsed, declared)

    @pytest.mark.parametrize("plan", ["matrix", "trace"])
    def test_sharded_worker_attribution(self, rng, plan, pooled_sharded):
        """Sharded select/record are scaled to parent wall-clock, so the
        sum stays bounded even though workers overlap."""
        # Enough tiles that the pool path engages (>= 2 shards).
        trace = [
            GeMMWorkload(
                name="big",
                spikes=random_spike_matrix(64 * 40, 16, 0.3, rng, 0.2),
                n=8,
            )
        ]
        report, elapsed = _run(pooled_sharded, plan, trace)
        declared = PLANNED_PROFILE_STAGES if plan == "trace" else PROFILE_STAGES
        _assert_profile_contract(report, elapsed, declared)
        assert report.workers == 2
        assert report.profile["select"] > 0.0

    def test_vectorized_matrix_mode_has_no_profile(self, rng):
        """Backends without stage instrumentation report an empty profile."""
        report, _ = _run("vectorized", "matrix", _trace(rng))
        assert report.profile == {}

    def test_vectorized_trace_mode_reports_planner_stages(self, rng):
        """The planner's own stages are engine-timed for any backend."""
        report, elapsed = _run("vectorized", "trace", _trace(rng))
        _assert_profile_contract(report, elapsed, PLANNED_PROFILE_STAGES)
        assert report.profile["pack"] > 0.0
        assert report.profile["record"] > 0.0  # kernel loop engine-timed

    def test_stage_sum_close_to_total_for_fused(self, rng):
        """Stages should account for most of the run, not just a sliver."""
        report, _ = _run("fused", "trace", _trace(rng))
        assert sum(report.profile.values()) >= 0.5 * report.total_seconds

    def test_profile_isolated_between_runs(self, rng):
        """Per-run profiles are deltas, not lifetime accumulations."""
        engine = ProsperityEngine(backend="fused", tile_m=64, tile_k=16)
        trace = _trace(rng)
        first = engine.run(trace, batch=4)
        second = engine.run(trace, batch=4)
        for stage in PROFILE_STAGES:
            # A lifetime accumulation would roughly double; a delta stays
            # in the same ballpark (10x headroom for scheduler noise).
            assert second.profile[stage] <= max(
                10.0 * first.profile[stage], 1e-3
            ), stage

    def test_workload_seconds_sum_to_total(self, rng):
        report, _ = _run("fused", "trace", _trace(rng))
        assert report.total_seconds == pytest.approx(
            sum(run.seconds for run in report.runs)
        )
        assert all(run.seconds >= 0.0 for run in report.runs)
        assert np.isfinite(report.tiles_per_sec)
