"""Tests for spiking layers and attention blocks."""

import numpy as np
import pytest

from repro.snn.layers import (
    Flatten,
    MaxPool2d,
    SpikeDrivenSelfAttention,
    SpikingConv2d,
    SpikingLinear,
    SpikingSelfAttention,
    TransformerFFN,
)
from repro.snn.network import Residual, Sequential
from repro.snn.trace import WorkloadRecorder, recording


class TestSpikingConv2d:
    def test_output_shape_and_dtype(self, rng):
        conv = SpikingConv2d(3, 8, kernel=3, padding=1, rng=rng, target_rate=0.3)
        spikes = rng.random((2, 3, 8, 8)) < 0.4
        out = conv(spikes)
        assert out.shape == (2, 8, 8, 8)
        assert out.dtype == bool

    def test_stride_halves_resolution(self, rng):
        conv = SpikingConv2d(2, 4, kernel=3, stride=2, padding=1, rng=rng)
        out = conv(rng.random((2, 2, 8, 8)) < 0.5)
        assert out.shape == (2, 4, 4, 4)

    def test_records_workload(self, rng):
        conv = SpikingConv2d(3, 8, kernel=3, padding=1, name="c0", rng=rng)
        spikes = rng.random((2, 3, 8, 8)) < 0.4
        recorder = WorkloadRecorder()
        with recording(recorder):
            conv(spikes)
        assert len(recorder.workloads) == 1
        workload = recorder.workloads[0]
        assert workload.name == "c0"
        assert workload.m == 2 * 8 * 8
        assert workload.k == 3 * 9
        assert workload.n == 8

    def test_calibration_hits_target_rate(self, rng):
        conv = SpikingConv2d(
            3, 16, kernel=3, padding=1, rng=rng, target_rate=0.25, rate_spread=0.0
        )
        out = conv(rng.random((4, 3, 16, 16)) < 0.5)
        assert abs(out.mean() - 0.25) < 0.05

    def test_rejects_wrong_channels(self, rng):
        conv = SpikingConv2d(3, 8, rng=rng)
        with pytest.raises(ValueError):
            conv(np.zeros((2, 4, 8, 8), dtype=bool))

    def test_calibration_is_sticky(self, rng):
        conv = SpikingConv2d(2, 4, rng=rng)
        first = rng.random((2, 2, 8, 8)) < 0.5
        conv(first)
        threshold = np.array(conv.neuron.v_threshold, copy=True)
        conv(rng.random((2, 2, 8, 8)) < 0.5)
        assert (np.asarray(conv.neuron.v_threshold) == threshold).all()


class TestSpikingLinear:
    def test_shape(self, rng):
        layer = SpikingLinear(32, 16, rng=rng)
        out = layer(rng.random((4, 10, 32)) < 0.3)
        assert out.shape == (4, 10, 16)
        assert out.dtype == bool

    def test_no_fire_returns_float(self, rng):
        layer = SpikingLinear(16, 4, fire=False, rng=rng)
        out = layer(rng.random((2, 16)) < 0.3)
        assert out.dtype == np.float64

    def test_records_flattened_rows(self, rng):
        layer = SpikingLinear(16, 4, name="fc", rng=rng)
        recorder = WorkloadRecorder()
        with recording(recorder):
            layer(rng.random((4, 10, 16)) < 0.3)
        assert recorder.workloads[0].m == 40

    def test_no_recording_for_float_input(self, rng):
        layer = SpikingLinear(16, 4, rng=rng)
        recorder = WorkloadRecorder()
        with recording(recorder):
            layer(rng.random((2, 16)))  # float input: not a spiking GeMM
        assert recorder.workloads == []

    def test_rejects_wrong_features(self, rng):
        layer = SpikingLinear(16, 4, rng=rng)
        with pytest.raises(ValueError):
            layer(np.zeros((2, 8), dtype=bool))


class TestAttention:
    def test_ssa_output_binary_and_shaped(self, rng):
        ssa = SpikingSelfAttention(32, heads=4, rng=rng)
        out = ssa(rng.random((2, 8, 32)) < 0.3)
        assert out.shape == (2, 8, 32)
        assert out.dtype == bool

    def test_ssa_records_attention_workloads(self, rng):
        ssa = SpikingSelfAttention(32, heads=4, rng=rng)
        recorder = WorkloadRecorder()
        with recording(recorder):
            ssa(rng.random((2, 8, 32)) < 0.3)
        kinds = {w.kind for w in recorder.workloads}
        assert "attention" in kinds and "linear" in kinds
        attn = [w for w in recorder.workloads if w.kind == "attention"]
        # kv + qkv per (timestep, head): 2 * 2 * 4
        assert len(attn) == 16

    def test_ssa_rejects_indivisible_heads(self, rng):
        with pytest.raises(ValueError):
            SpikingSelfAttention(30, heads=4, rng=rng)

    def test_sdsa_no_attention_gemm(self, rng):
        sdsa = SpikeDrivenSelfAttention(32, heads=4, rng=rng)
        recorder = WorkloadRecorder()
        with recording(recorder):
            out = sdsa(rng.random((2, 8, 32)) < 0.3)
        assert out.dtype == bool
        assert all(w.kind == "linear" for w in recorder.workloads)

    def test_ffn_expansion(self, rng):
        ffn = TransformerFFN(16, ratio=4, rng=rng)
        recorder = WorkloadRecorder()
        with recording(recorder):
            out = ffn(rng.random((2, 4, 16)) < 0.3)
        assert out.shape == (2, 4, 16)
        assert recorder.workloads[0].n == 64
        assert recorder.workloads[1].k == 64


class TestContainers:
    def test_sequential_chains(self, rng):
        net = Sequential(
            [
                SpikingConv2d(1, 4, padding=1, rng=rng),
                MaxPool2d(2),
                Flatten(),
                SpikingLinear(4 * 4 * 4, 10, rng=rng),
            ]
        )
        out = net(rng.random((2, 1, 8, 8)) < 0.5)
        assert out.shape == (2, 10)

    def test_residual_or_semantics(self, rng):
        class Zero:
            def __call__(self, x):
                return np.zeros_like(x)

        res = Residual(Zero())
        spikes = rng.random((2, 4)) < 0.5
        assert (res(spikes) == spikes).all()

    def test_residual_passthrough_on_shape_change(self, rng):
        layer = SpikingLinear(8, 4, rng=rng)
        res = Residual(layer)
        out = res(rng.random((2, 8)) < 0.5)
        assert out.shape == (2, 4)  # no OR possible; branch result returned
