"""``max_tiles`` sampling composed with the fused and planner paths.

Sampling must stay an unbiased, deterministic subset regardless of how
the records are computed: the sampled fraction is exact, sampled records
are a strict subset of the full-matrix records, and a fixed RNG seed
reproduces the same sample through every backend and plan mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.prosparsity import transform_matrix
from repro.core.spike_matrix import random_spike_matrix
from repro.engine import ProsperityEngine

TILE_M, TILE_K = 64, 16
MAX_TILES = 10


@pytest.fixture
def matrix(rng):
    # 20 row blocks x 3 col blocks = 60 tiles, ragged on both axes.
    return random_spike_matrix(TILE_M * 20 - 10, TILE_K * 3 - 5, 0.3, rng, 0.4)


def _engine(backend, plan):
    return ProsperityEngine(backend=backend, tile_m=TILE_M, tile_k=TILE_K, plan=plan)


def _record_multiset(records):
    return sorted(map(tuple, records.tolist()))


class TestSampledFraction:
    @pytest.mark.parametrize("backend", ["vectorized", "fused"])
    @pytest.mark.parametrize("plan", ["matrix", "trace"])
    def test_fraction_exact(self, matrix, backend, plan):
        total = matrix.num_tiles(TILE_M, TILE_K)
        result = _engine(backend, plan).transform_matrix(
            matrix, max_tiles=MAX_TILES, rng=np.random.default_rng(11)
        )
        assert len(result.tile_records) == MAX_TILES
        assert result.stats.sample_fraction == MAX_TILES / total

    def test_no_sampling_when_under_cap(self, rng):
        small = random_spike_matrix(TILE_M, TILE_K, 0.3, rng)
        result = _engine("fused", "trace").transform_matrix(
            small, max_tiles=MAX_TILES, rng=np.random.default_rng(11)
        )
        assert result.stats.sample_fraction == 1.0
        assert len(result.tile_records) == 1


class TestSampledSubset:
    @pytest.mark.parametrize("backend", ["vectorized", "fused"])
    @pytest.mark.parametrize("plan", ["matrix", "trace"])
    def test_records_strict_subset_of_full(self, matrix, backend, plan):
        engine = _engine(backend, plan)
        sampled = engine.transform_matrix(
            matrix, max_tiles=MAX_TILES, rng=np.random.default_rng(11)
        )
        full = engine.transform_matrix(matrix)
        assert len(sampled.tile_records) < len(full.tile_records)
        full_multiset = _record_multiset(full.tile_records)
        for record in map(tuple, sampled.tile_records.tolist()):
            assert record in full_multiset

    def test_sample_counts_bounded_by_full(self, matrix):
        """Each distinct record appears at most as often as in the full set."""
        engine = _engine("fused", "trace")
        sampled = engine.transform_matrix(
            matrix, max_tiles=MAX_TILES, rng=np.random.default_rng(11)
        )
        full = engine.transform_matrix(matrix)
        from collections import Counter

        sampled_counts = Counter(map(tuple, sampled.tile_records.tolist()))
        full_counts = Counter(map(tuple, full.tile_records.tolist()))
        for record, count in sampled_counts.items():
            assert count <= full_counts[record]


class TestSampledDeterminism:
    @pytest.mark.parametrize("backend", ["vectorized", "fused"])
    @pytest.mark.parametrize("plan", ["matrix", "trace"])
    def test_fixed_seed_reproduces(self, matrix, backend, plan):
        engine = _engine(backend, plan)
        first = engine.transform_matrix(
            matrix, max_tiles=MAX_TILES, rng=np.random.default_rng(42)
        )
        second = engine.transform_matrix(
            matrix, max_tiles=MAX_TILES, rng=np.random.default_rng(42)
        )
        assert np.array_equal(first.tile_records, second.tile_records)

    @pytest.mark.parametrize("plan", ["matrix", "trace"])
    def test_matches_core_sampled_path(self, matrix, plan):
        """Same seed, same tiles, same records as the core oracle path."""
        core = transform_matrix(
            matrix, TILE_M, TILE_K, keep_transforms=False,
            max_tiles=MAX_TILES, rng=np.random.default_rng(7),
        )
        engine = _engine("fused", plan).transform_matrix(
            matrix, max_tiles=MAX_TILES, rng=np.random.default_rng(7)
        )
        assert np.array_equal(core.tile_records, engine.tile_records)
        assert core.stats.sample_fraction == engine.stats.sample_fraction

    def test_plan_modes_sample_identically(self, matrix):
        """Both plan modes draw the same RNG sequence tile for tile."""
        a = _engine("fused", "matrix").transform_matrix(
            matrix, max_tiles=MAX_TILES, rng=np.random.default_rng(3)
        )
        b = _engine("fused", "trace").transform_matrix(
            matrix, max_tiles=MAX_TILES, rng=np.random.default_rng(3)
        )
        assert np.array_equal(a.tile_records, b.tile_records)


class TestSampledTraceComposition:
    def test_default_rng_matches_per_workload_reseed(self, rng):
        """rng=None seeds default_rng(0) *per workload* in both modes.

        transform_matrix reseeds per call, so the trace plan must too —
        a single shared generator would diverge from workload 1 on.
        """
        matrices = [
            random_spike_matrix(TILE_M * 20, TILE_K * 2, 0.3, rng, 0.4)
            for _ in range(3)
        ]
        planned = _engine("fused", "trace").transform_trace(
            matrices, max_tiles=MAX_TILES
        )
        loop = _engine("fused", "matrix").transform_trace(
            matrices, max_tiles=MAX_TILES
        )
        for mine, theirs in zip(planned, loop):
            assert np.array_equal(mine.tile_records, theirs.tile_records)

    def test_mixed_sampled_and_whole_workloads(self, rng):
        """transform_trace mixes sampled + exact workloads in one plan."""
        big = random_spike_matrix(TILE_M * 20, TILE_K * 2, 0.3, rng, 0.4)
        small = random_spike_matrix(TILE_M, TILE_K, 0.3, rng)
        engine = _engine("fused", "trace")
        planned = engine.transform_trace(
            [big, small], max_tiles=MAX_TILES, rng=np.random.default_rng(5)
        )
        loop = _engine("fused", "matrix").transform_trace(
            [big, small], max_tiles=MAX_TILES, rng=np.random.default_rng(5)
        )
        for mine, theirs in zip(planned, loop):
            assert np.array_equal(mine.tile_records, theirs.tile_records)
            assert mine.stats.sample_fraction == theirs.stats.sample_fraction
        assert planned[0].stats.sample_fraction < 1.0
        assert planned[1].stats.sample_fraction == 1.0
