"""Tests for the PPU functional model and per-tile cycle model."""

import numpy as np
import pytest

from repro.arch.config import ProsperityConfig
from repro.arch.ppu import (
    MODE_BIT,
    MODE_DENSE,
    MODE_PROSPARSITY_SLOW,
    MODE_PROSPERITY,
    PPU,
    compute_phase_cycles,
    dispatch_overhead_cycles,
    pipeline_tile_cycles,
    prosparsity_phase_cycles,
)
from repro.core.prosparsity import transform_matrix
from repro.core.reference import dense_spiking_gemm
from repro.core.spike_matrix import random_spike_matrix


@pytest.fixture
def small_config():
    return ProsperityConfig(tile_m=64, tile_k=16, tile_n=32, num_pes=32,
                            tcam_entries=64)


class TestFunctionalPPU:
    def test_bit_exact_against_dense(self, rng, small_config):
        ppu = PPU(small_config)
        tile = (rng.random((64, 16)) < 0.3)
        weights = rng.normal(size=(16, 32))
        out = ppu.process_tile(tile, weights)
        np.testing.assert_allclose(out, dense_spiking_gemm(tile, weights), atol=1e-9)

    def test_paper_tile_bit_exact(self, paper_tile, rng):
        config = ProsperityConfig(tile_m=8, tile_k=4, tile_n=4, num_pes=4,
                                  tcam_entries=8)
        ppu = PPU(config)
        weights = rng.normal(size=(4, 4))
        out = ppu.process_tile(paper_tile.bits, weights)
        np.testing.assert_allclose(
            out, dense_spiking_gemm(paper_tile.bits, weights), atol=1e-9
        )

    def test_rejects_weight_mismatch(self, rng, small_config):
        ppu = PPU(small_config)
        with pytest.raises(ValueError):
            ppu.process_tile(rng.random((8, 16)) < 0.5, rng.normal(size=(8, 4)))


class TestCycleModel:
    def _records(self, rng, density=0.3, rows=512, cols=64):
        matrix = random_spike_matrix(rows, cols, density, rng)
        return transform_matrix(matrix, 256, 16, keep_transforms=False).tile_records

    def test_prosparsity_phase_is_m_plus_depth(self, rng):
        config = ProsperityConfig()
        records = self._records(rng)
        phases = prosparsity_phase_cycles(config, records[:, 0])
        assert (phases == records[:, 0] + config.prosparsity_pipeline_depth).all()

    def test_mode_ordering(self, rng):
        """dense >= bit >= prosperity compute cycles, always."""
        config = ProsperityConfig()
        records = self._records(rng)
        dense = compute_phase_cycles(config, records, 128, MODE_DENSE)
        bit = compute_phase_cycles(config, records, 128, MODE_BIT)
        pro = compute_phase_cycles(config, records, 128, MODE_PROSPERITY)
        assert (dense >= bit).all()
        assert (bit >= pro).all()

    def test_n_tiling_multiplies_compute(self, rng):
        config = ProsperityConfig()
        records = self._records(rng)
        once = compute_phase_cycles(config, records, 128, MODE_PROSPERITY)
        twice = compute_phase_cycles(config, records, 256, MODE_PROSPERITY)
        assert (twice == 2 * once).all()

    def test_pipeline_overlap_hides_phases(self, rng):
        """With compute-dominant tiles, exposed overhead ~ first tile only."""
        config = ProsperityConfig()
        records = self._records(rng, density=0.5, rows=2048, cols=128)
        total, compute, exposed = pipeline_tile_cycles(
            config, records, 512, MODE_PROSPERITY
        )
        assert total == pytest.approx(compute + exposed)
        assert exposed < 0.05 * compute  # almost fully overlapped

    def test_slow_dispatch_slower(self, rng):
        config = ProsperityConfig()
        records = self._records(rng, rows=2048)
        fast, _, _ = pipeline_tile_cycles(config, records, 128, MODE_PROSPERITY)
        slow, _, _ = pipeline_tile_cycles(config, records, 128, MODE_PROSPARSITY_SLOW)
        assert slow > fast

    def test_dispatch_overhead_positive(self, rng):
        records = self._records(rng)
        assert (dispatch_overhead_cycles(records) > 0).all()

    def test_empty_records(self):
        config = ProsperityConfig()
        empty = np.zeros((0, 9), dtype=np.int64)
        assert pipeline_tile_cycles(config, empty, 128) == (0.0, 0.0, 0.0)

    def test_unknown_mode_raises(self, rng):
        config = ProsperityConfig()
        records = self._records(rng)
        with pytest.raises(ValueError):
            compute_phase_cycles(config, records, 128, "warp_speed")

    def test_em_rows_still_cost_one_cycle(self):
        """Sec. VII-F: EM has 100% sparsity but still takes one cycle."""
        config = ProsperityConfig(tile_m=8, tile_k=4, tcam_entries=8)
        bits = np.tile(np.array([[1, 0, 1, 0]], dtype=bool), (8, 1))
        records = transform_matrix(bits, 8, 4, keep_transforms=False).tile_records
        compute = compute_phase_cycles(config, records, 32, MODE_PROSPERITY)
        # 2 residual spikes (first row) + 7 EM rows x 1 cycle + depth.
        assert compute[0] == 2 + 7 + config.processor_pipeline_depth
