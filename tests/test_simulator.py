"""Tests for the end-to-end Prosperity simulator."""

import numpy as np
import pytest

from repro.arch.config import ProsperityConfig
from repro.arch.ppu import MODE_BIT, MODE_DENSE, MODE_PROSPARSITY_SLOW, MODE_PROSPERITY
from repro.arch.report import geometric_mean, speedup
from repro.arch.simulator import ProsperitySimulator
from repro.core.spike_matrix import SpikeMatrix
from repro.snn.trace import GeMMWorkload, ModelTrace


@pytest.fixture(scope="module")
def small_trace():
    rng = np.random.default_rng(3)
    workloads = [
        GeMMWorkload(
            name=f"layer{i}",
            spikes=SpikeMatrix(rng.random((512, 128)) < 0.25),
            n=128,
            time_steps=4,
        )
        for i in range(3)
    ]
    return ModelTrace(model="toy", dataset="synthetic", workloads=workloads)


class TestSimulatorModes:
    def test_mode_speedup_ladder(self, small_trace):
        """Fig. 9 ordering: dense < bit < slow-dispatch < prosperity."""
        cycles = {}
        for mode in (MODE_DENSE, MODE_BIT, MODE_PROSPARSITY_SLOW, MODE_PROSPERITY):
            sim = ProsperitySimulator(mode=mode)
            cycles[mode] = sim.simulate(small_trace).cycles
        assert cycles[MODE_DENSE] > cycles[MODE_BIT]
        assert cycles[MODE_BIT] > cycles[MODE_PROSPARSITY_SLOW]
        assert cycles[MODE_PROSPARSITY_SLOW] > cycles[MODE_PROSPERITY]

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ProsperitySimulator(mode="quantum")

    def test_report_metadata(self, small_trace):
        report = ProsperitySimulator().simulate(small_trace)
        assert report.accelerator == "prosperity"
        assert report.model == "toy"
        assert len(report.layers) == 3

    def test_energy_components_present(self, small_trace):
        report = ProsperitySimulator().simulate(small_trace)
        breakdown = report.energy_breakdown_pj
        for key in ("detector", "pruner", "dispatcher", "processor",
                    "buffers", "neuron_sfu", "dram", "static"):
            assert breakdown[key] > 0, key

    def test_bit_mode_skips_frontend_energy(self, small_trace):
        report = ProsperitySimulator(mode=MODE_BIT).simulate(small_trace)
        breakdown = report.energy_breakdown_pj
        assert breakdown["detector"] == 0
        assert breakdown["dispatcher"] == 0

    def test_sampling_approximates_full(self, small_trace):
        full = ProsperitySimulator().simulate(small_trace)
        sampled = ProsperitySimulator(
            max_tiles_per_workload=8, rng=np.random.default_rng(0)
        ).simulate(small_trace)
        assert sampled.cycles == pytest.approx(full.cycles, rel=0.3)
        assert sampled.energy_pj == pytest.approx(full.energy_pj, rel=0.3)

    def test_custom_tile_config(self, small_trace):
        config = ProsperityConfig(tile_m=128, tcam_entries=128)
        report = ProsperitySimulator(config=config).simulate(small_trace)
        assert report.cycles > 0

    def test_area_property(self):
        assert ProsperitySimulator().area_mm2 == pytest.approx(0.529, rel=0.1)


class TestLatencyBehaviour:
    def test_denser_spikes_slower(self):
        rng = np.random.default_rng(5)

        def trace_at(density):
            w = GeMMWorkload(
                "w", SpikeMatrix(rng.random((512, 128)) < density), 128, time_steps=4
            )
            return ModelTrace("t", "d", [w])

        sparse = ProsperitySimulator().simulate(trace_at(0.1))
        dense = ProsperitySimulator().simulate(trace_at(0.5))
        assert dense.cycles > sparse.cycles

    def test_attention_workload_supported(self):
        rng = np.random.default_rng(6)
        w = GeMMWorkload(
            "attn", SpikeMatrix(rng.random((64, 64)) < 0.2), 32, kind="attention"
        )
        report = ProsperitySimulator().simulate(ModelTrace("t", "d", [w]))
        assert report.cycles > 0

    def test_memory_bound_layer_uses_dram_cycles(self):
        from repro.arch.config import DRAMConfig

        rng = np.random.default_rng(7)
        # At full 64 GB/s the design is compute-bound (the row-issue floor
        # dominates); throttling DRAM exposes the max(compute, memory) path.
        config = ProsperityConfig(
            dram=DRAMConfig(bandwidth_bytes_per_s=2e9)
        )
        w = GeMMWorkload(
            "mem", SpikeMatrix(rng.random((2048, 512)) < 0.01), 128, time_steps=4
        )
        report = ProsperitySimulator(config=config).simulate(
            ModelTrace("t", "d", [w])
        )
        layer = report.layers[0]
        assert layer.memory_cycles > layer.compute_cycles
        assert layer.cycles >= layer.memory_cycles


class TestReportHelpers:
    def test_speedup_and_geomean(self, small_trace):
        fast = ProsperitySimulator().simulate(small_trace)
        slow = ProsperitySimulator(mode=MODE_DENSE).simulate(small_trace)
        assert speedup(slow, fast) > 1.0
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0

    def test_throughput_positive(self, small_trace):
        report = ProsperitySimulator().simulate(small_trace)
        assert report.throughput_gops() > 0
        assert report.energy_efficiency_gops_per_j() > 0
        assert report.avg_power_w > 0
