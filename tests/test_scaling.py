"""Tests for the Sec. VIII-A scalability models."""

import numpy as np
import pytest

from repro.arch.config import ProsperityConfig
from repro.arch.ppu import MODE_PROSPERITY, compute_phase_cycles
from repro.arch.scaling import (
    intra_ppu_tile_cycles,
    multi_ppu_workload_cycles,
    scaling_study,
)
from repro.core.prosparsity import transform_matrix
from repro.core.spike_matrix import random_spike_matrix


@pytest.fixture(scope="module")
def records():
    rng = np.random.default_rng(9)
    matrix = random_spike_matrix(2048, 64, 0.3, rng, row_correlation=0.3)
    return transform_matrix(matrix, 256, 16, keep_transforms=False).tile_records


class TestIntraPPU:
    def test_width_one_matches_base(self, records):
        config = ProsperityConfig()
        base = compute_phase_cycles(config, records, 128, MODE_PROSPERITY)
        scaled = intra_ppu_tile_cycles(config, records, 128, issue_width=1)
        assert (scaled >= base).all()  # critical path can only add

    def test_wider_issue_never_slower(self, records):
        config = ProsperityConfig()
        w2 = intra_ppu_tile_cycles(config, records, 128, issue_width=2)
        w4 = intra_ppu_tile_cycles(config, records, 128, issue_width=4)
        assert (w4 <= w2).all()

    def test_critical_path_limits_speedup(self, records):
        """Issue width 64 cannot beat the forest's dependency chains."""
        config = ProsperityConfig()
        wide = intra_ppu_tile_cycles(config, records, 128, issue_width=64)
        depth = records[:, 8]
        assert (wide >= depth).all()

    def test_rejects_bad_width(self, records):
        with pytest.raises(ValueError):
            intra_ppu_tile_cycles(ProsperityConfig(), records, 128, issue_width=0)


class TestInterPPU:
    def test_more_ppus_never_slower(self, records):
        config = ProsperityConfig()
        one = multi_ppu_workload_cycles(config, records, 128, num_ppus=1)
        four = multi_ppu_workload_cycles(config, records, 128, num_ppus=4)
        assert four <= one

    def test_speedup_bounded_by_ppu_count(self, records):
        config = ProsperityConfig()
        one = multi_ppu_workload_cycles(config, records, 128, num_ppus=1)
        four = multi_ppu_workload_cycles(config, records, 128, num_ppus=4)
        assert one / four <= 4.0 + 1e-9

    def test_empty_records(self):
        config = ProsperityConfig()
        empty = np.zeros((0, 9), dtype=np.int64)
        assert multi_ppu_workload_cycles(config, empty, 128, 4) == 0.0

    def test_rejects_zero_ppus(self, records):
        with pytest.raises(ValueError):
            multi_ppu_workload_cycles(ProsperityConfig(), records, 128, 0)


class TestScalingStudy:
    def test_grid_shape_and_monotonicity(self, vgg_trace):
        points = scaling_study(
            vgg_trace, ppu_counts=(1, 4), issue_widths=(1, 2),
            max_tiles=8, rng=np.random.default_rng(0),
        )
        assert len(points) == 4
        baseline = next(p for p in points if p.num_ppus == 1 and p.issue_width == 1)
        assert baseline.speedup == pytest.approx(1.0)
        best = max(points, key=lambda p: p.speedup)
        assert best.speedup > 1.5
        # Efficiency degrades with scale (imbalance + critical path).
        assert all(p.efficiency <= 1.0 + 1e-9 for p in points)
