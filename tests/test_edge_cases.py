"""Edge-case and failure-injection tests across the stack."""

import numpy as np
import pytest

from repro.arch.ppu import MODE_PROSPERITY, pipeline_tile_cycles
from repro.arch.config import ProsperityConfig
from repro.arch.simulator import ProsperitySimulator
from repro.core.dispatch import build_dispatch_plan
from repro.core.forest import NO_PREFIX, build_forest
from repro.core.prosparsity import execute_gemm, transform_matrix
from repro.core.reference import dense_spiking_gemm
from repro.core.spike_matrix import SpikeMatrix, SpikeTile
from repro.snn.trace import GeMMWorkload, ModelTrace


class TestDegenerateTiles:
    def test_single_row_tile(self):
        tile = SpikeTile(np.array([[1, 0, 1]], dtype=bool))
        forest = build_forest(tile)
        assert forest.prefix[0] == NO_PREFIX
        assert forest.product_nnz() == 2

    def test_single_column_tile(self):
        tile = SpikeTile(np.array([[1], [1], [0], [1]], dtype=bool))
        forest = build_forest(tile)
        # Rows 1, 3 EM-reuse row 0; row 2 is empty.
        assert forest.prefix[1] == 0
        assert forest.prefix[3] in (0, 1)
        assert forest.product_nnz() == 1

    def test_all_zero_tile(self):
        tile = SpikeTile(np.zeros((8, 8), dtype=bool))
        forest = build_forest(tile)
        assert (forest.prefix == NO_PREFIX).all()
        assert forest.product_nnz() == 0
        plan = build_dispatch_plan(forest)
        assert len(plan) == 8

    def test_all_ones_tile(self):
        tile = SpikeTile(np.ones((8, 8), dtype=bool))
        forest = build_forest(tile)
        # Every row after the first EM-reuses an earlier one.
        assert (forest.prefix[1:] != NO_PREFIX).all()
        assert forest.product_nnz() == 8

    def test_wide_tile_beyond_64_bits(self, rng):
        """Packed-row algebra must work past one machine word."""
        bits = rng.random((32, 200)) < 0.2
        bits[5] = bits[3]  # plant an EM pair
        forest = build_forest(SpikeTile(bits))
        assert forest.prefix[5] == 3 or (
            forest.popcounts[forest.prefix[5]] == forest.popcounts[5]
        )
        weights = rng.integers(-4, 4, size=(200, 3))
        out = execute_gemm(SpikeMatrix(bits), weights, tile_m=32, tile_k=200)
        assert (out == dense_spiking_gemm(bits, weights)).all()

    def test_tile_larger_than_matrix(self, rng):
        bits = rng.random((10, 5)) < 0.4
        result = transform_matrix(bits, 256, 16)
        assert result.stats.tiles == 1
        assert result.stats.rows == 10


class TestTileShapeValidation:
    """Non-positive tile sizes must fail loudly, not produce empty results."""

    @pytest.mark.parametrize("tile_m,tile_k", [(0, 16), (-1, 16), (256, 0), (256, -8)])
    def test_transform_matrix_rejects_bad_shapes(self, rng, tile_m, tile_k):
        bits = rng.random((32, 16)) < 0.3
        with pytest.raises(ValueError, match="positive integer"):
            transform_matrix(bits, tile_m, tile_k)

    @pytest.mark.parametrize("tile_m,tile_k", [(0, 16), (256, 0)])
    def test_sampled_transform_rejects_bad_shapes(self, rng, tile_m, tile_k):
        """The sampling path used to yield a silent empty transform."""
        bits = rng.random((512, 64)) < 0.3
        with pytest.raises(ValueError, match="positive integer"):
            transform_matrix(bits, tile_m, tile_k, max_tiles=4, rng=rng)

    def test_execute_gemm_rejects_bad_shapes(self, rng):
        bits = rng.random((16, 8)) < 0.4
        weights = rng.integers(-4, 4, size=(8, 4))
        with pytest.raises(ValueError, match="positive integer"):
            execute_gemm(SpikeMatrix(bits), weights, tile_m=-2, tile_k=8)

    def test_non_integer_tile_sizes_rejected(self, rng):
        bits = rng.random((16, 8)) < 0.4
        with pytest.raises(ValueError, match="positive integer"):
            transform_matrix(bits, 16.0, 8)
        with pytest.raises(ValueError, match="positive integer"):
            transform_matrix(bits, True, 8)

    def test_valid_numpy_integer_sizes_accepted(self, rng):
        bits = rng.random((16, 8)) < 0.4
        result = transform_matrix(bits, np.int64(16), np.int32(8))
        assert result.stats.tiles == 1


class TestSimulatorEdges:
    def test_empty_trace(self):
        report = ProsperitySimulator().simulate(ModelTrace("m", "d", []))
        assert report.cycles == 0
        assert report.energy_j == 0
        assert report.seconds == 0

    def test_single_tiny_workload(self, rng):
        w = GeMMWorkload("t", SpikeMatrix(rng.random((4, 4)) < 0.5), 2)
        report = ProsperitySimulator().simulate(ModelTrace("m", "d", [w]))
        assert report.cycles > 0

    def test_all_zero_workload(self):
        w = GeMMWorkload("z", SpikeMatrix(np.zeros((256, 16), dtype=bool)), 128)
        report = ProsperitySimulator().simulate(ModelTrace("m", "d", [w]))
        layer = report.layers[0]
        # Zero rows still issue: one cycle each plus pipeline depth.
        assert layer.compute_cycles >= 256

    def test_records_single_tile_pipeline(self, rng):
        config = ProsperityConfig()
        bits = rng.random((256, 16)) < 0.3
        records = transform_matrix(bits, 256, 16, keep_transforms=False).tile_records
        total, compute, exposed = pipeline_tile_cycles(
            config, records, 128, MODE_PROSPERITY
        )
        # A single tile exposes its full ProSparsity phase.
        assert exposed >= 256
        assert total == compute + exposed


class TestNumericalRobustness:
    def test_large_weights_no_overflow(self, rng):
        bits = rng.random((64, 32)) < 0.5
        weights = rng.integers(-(2**20), 2**20, size=(32, 4))
        out = execute_gemm(SpikeMatrix(bits), weights, tile_m=32, tile_k=16)
        assert (out == dense_spiking_gemm(bits, weights)).all()

    def test_float32_weights_supported(self, rng):
        bits = rng.random((32, 16)) < 0.4
        weights = rng.normal(size=(16, 4)).astype(np.float32)
        out = execute_gemm(SpikeMatrix(bits), weights, tile_m=16, tile_k=16)
        np.testing.assert_allclose(
            out, dense_spiking_gemm(bits, weights), rtol=1e-5
        )

    def test_deep_em_chain_execution(self, rng):
        """Hundreds of identical rows: one compute, all reuse, exact."""
        row = (rng.random(16) < 0.4)
        bits = np.tile(row, (300, 1))
        weights = rng.integers(-8, 8, size=(16, 4))
        out = execute_gemm(SpikeMatrix(bits), weights, tile_m=256, tile_k=16)
        assert (out == dense_spiking_gemm(bits, weights)).all()
        stats = transform_matrix(bits, 256, 16, keep_transforms=False).stats
        # 2 tiles -> computed at most twice.
        assert stats.product_nnz <= 2 * int(row.sum())
