"""The network serving front end (ISSUE 9): repro.server + ServeClient.

Acceptance contract: results fetched through :class:`ServeClient` over
a real socket are byte-identical to ``Session.run()`` for every
backend; mixed tenants coalesce into shared planner batches (visible as
cross-tenant dedup under ``/metrics``); quota / priority / deadline
violations map to the documented HTTP statuses (429 / 400 / 504, plus
500 job-scoped failures and 503 while draining); graceful drain —
SIGTERM on the CLI process or ``POST /admin/drain`` in-process — loses
zero accepted jobs; and the ``reject_request`` / ``slow_request`` /
``worker_crash`` fault kinds produce clean, job-scoped wire errors, not
hung connections.
"""

from __future__ import annotations

import os
import pathlib
import re
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.api import (
    BatchExecutionError,
    DeadlineExceeded,
    RunConfig,
    SchedulerSaturated,
    ServeClient,
    ServeRequestError,
    ServeUnavailable,
    Session,
)
from repro.engine import available_backends, faults
from repro.server import ReproServer

LENET = {
    "workload.model": "lenet5",
    "workload.dataset": "mnist",
    "scheduler.coalesce_window_ms": 0.0,
}


def serve_config(**extra) -> RunConfig:
    return RunConfig().with_overrides({**LENET, **extra})


def _pythonpath() -> str:
    """PYTHONPATH that lets ``python -m repro.cli`` subprocesses import
    the package from a bare checkout (mirrors the conftest src shim)."""
    src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
    current = os.environ.get("PYTHONPATH", "")
    return f"{src}{os.pathsep}{current}" if current else src


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    """Every test starts and ends with no fault plan."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.clear()
    yield
    faults.clear()


class TestWireBitIdentity:
    """Records over the socket == Session.run(), for every backend."""

    @pytest.mark.parametrize("backend", available_backends())
    def test_round_trip_is_byte_identical(self, backend):
        cfg = serve_config(**{"engine.backend": backend,
                              "engine.plan": "trace"})
        with Session(cfg) as session:
            direct = session.run()
        with ReproServer(cfg) as server:
            with ServeClient(server.url) as client:
                result = client.submit("run")
        assert result.report["backend"] == backend
        assert len(result.report["runs"]) == len(direct.report.runs)
        for run in direct.report.runs:
            wire = result.records(run.name)
            assert wire.dtype == run.records.dtype
            assert np.array_equal(wire, run.records), run.name

    def test_digest_mode_proves_identity_without_bytes(self):
        from repro.server import records_digest

        cfg = serve_config(**{"engine.backend": "fused"})
        with Session(cfg) as session:
            direct = session.run()
        with ReproServer(cfg) as server:
            with ServeClient(server.url) as client:
                result = client.submit("run", records="digest")
        for run in direct.report.runs:
            wire = next(
                entry for entry in result.report["runs"]
                if entry["name"] == run.name
            )
            assert wire["records"] is None  # nothing shipped
            assert wire["records_wire"]["blake2b"] == records_digest(run.records)

    def test_none_mode_ships_tile_counts_only(self):
        cfg = serve_config(**{"engine.backend": "fused"})
        with ReproServer(cfg) as server:
            with ServeClient(server.url) as client:
                result = client.submit("run", records="none")
        for entry in result.report["runs"]:
            assert entry["records"] is None
            assert "data" not in entry["records_wire"]
            assert entry["tiles"] > 0

    def test_non_run_kinds_report_type_and_seconds(self):
        with ReproServer(serve_config()) as server:
            with ServeClient(server.url) as client:
                result = client.submit("tradeoff")
        assert result.result["type"] == "TradeoffRunResult"
        assert result.report is None

    def test_sparse_config_overlay(self):
        # The request overlays only what differs; the server's defaults
        # (workload, sampling) fill the rest and full validation runs.
        with ReproServer(serve_config()) as server:
            with ServeClient(server.url) as client:
                result = client.submit(
                    "run", config={"engine": {"backend": "reference"}}
                )
        assert result.report["backend"] == "reference"
        assert result.report["model"] == "lenet5"


class TestCrossTenantCoalescing:
    def test_mixed_tenants_share_one_planner_batch(self):
        cfg = serve_config(**{
            "engine.backend": "fused",
            "engine.plan": "trace",
            "scheduler.coalesce_window_ms": 200.0,
        })
        with ReproServer(cfg) as server:
            results = []
            errors = []

            def submit(tenant: str, priority: str) -> None:
                try:
                    with ServeClient(server.url) as client:
                        results.append(client.submit(
                            "run", tenant=tenant, priority=priority,
                            records="digest",
                        ))
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=submit, args=(tenant, priority))
                for tenant, priority in [
                    ("acme", "interactive"), ("globex", "batch"),
                    ("acme", "batch"), ("globex", "interactive"),
                ]
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors, errors
            with ServeClient(server.url) as client:
                metrics = client.metrics()
        stats = metrics["scheduler"]
        assert stats["jobs_submitted"] == 4
        assert stats["jobs_coalesced"] == 4  # one shared window
        assert stats["batches"] == 1
        assert stats["jobs_by_tenant"] == {"acme": 2, "globex": 2}
        assert stats["jobs_by_priority"] == {"interactive": 2, "batch": 2}
        # /metrics surfaces the cross-tenant dedup of that shared batch:
        # four identical lenet jobs dedup to one job's unique tiles.
        dedup = metrics["server"]["dedup"]
        assert dedup["last_ratio"] > 1.0
        assert dedup["last_planned_tiles"] > dedup["last_unique_tiles"]


class TestStatusMapping:
    def test_validation_errors_are_400(self):
        with ReproServer(serve_config()) as server:
            with ServeClient(server.url) as client:
                with pytest.raises(ServeRequestError, match="unknown experiment"):
                    client.submit("fly")
                with pytest.raises(ServeRequestError, match="records mode"):
                    client.submit("run", records="sometimes")
                with pytest.raises(ServeRequestError, match="unknown key"):
                    client.submit("run", config={"engine": {"warp": 9}})

    def test_unknown_tenant_is_400(self):
        cfg = serve_config(**{
            "server.tenants": ["acme", "anonymous"],
        })
        with ReproServer(cfg) as server:
            with ServeClient(server.url) as client:
                with pytest.raises(ServeRequestError, match="unknown tenant"):
                    client.submit("tradeoff", tenant="initech")

    def test_unknown_route_is_404(self):
        with ReproServer(serve_config()) as server:
            with ServeClient(server.url) as client:
                status, body = client._request("GET", "/nope")
                assert status == 404
                assert body["error"]["type"] == "NotFound"

    def test_tenant_quota_exhaustion_is_429(self):
        cfg = serve_config(**{
            "scheduler.coalesce_window_ms": 5000.0,
            "server.tenant_max_inflight": 1,
        })
        with ReproServer(cfg) as server:
            first_queued = threading.Event()
            release: list = []

            def occupant() -> None:
                with ServeClient(server.url) as client:
                    first_queued.set()
                    release.append(client.submit("tradeoff", tenant="acme"))

            thread = threading.Thread(target=occupant)
            thread.start()
            assert first_queued.wait(timeout=10)
            time.sleep(0.2)  # let the first request reach the queue
            with ServeClient(server.url) as client:
                with pytest.raises(SchedulerSaturated, match="tenant 'acme'"):
                    client.submit("tradeoff", tenant="acme", timeout_s=0.05)
                # Another tenant is unaffected at the same instant.
                other = client.submit("tradeoff", tenant="globex",
                                      timeout_s=5.0)
                assert other.tenant == "globex"
            thread.join(timeout=60)
            assert release  # the occupant's job completed fine

    def test_expired_deadline_is_504_job_scoped(self):
        cfg = serve_config(**{"scheduler.coalesce_window_ms": 150.0})
        with ReproServer(cfg) as server:
            with ServeClient(server.url) as client:
                with pytest.raises(DeadlineExceeded) as excinfo:
                    client.submit("tradeoff", deadline_ms=1,
                                  label="too-slow")
        assert excinfo.value.job_id is not None
        assert excinfo.value.label == "too-slow"

    def test_poisoned_job_is_500_healthy_peer_unharmed(self):
        # Blast-radius isolation over the wire: two jobs coalesce, the
        # poisoned one fails with a job-scoped BatchExecutionError, the
        # healthy one still gets bit-identical records.
        cfg = serve_config(**{
            "engine.backend": "fused",
            "engine.plan": "trace",
            "scheduler.coalesce_window_ms": 200.0,
            "resilience.faults": "poison_job:match=poison-me",
        })
        with Session(serve_config(**{"engine.backend": "fused",
                                     "engine.plan": "trace"})) as session:
            direct = session.run()
        outcomes: dict[str, object] = {}

        def submit(label: str) -> None:
            with ServeClient(server.url) as client:
                try:
                    outcomes[label] = client.submit("run", label=label)
                except Exception as exc:  # noqa: BLE001 - asserted below
                    outcomes[label] = exc

        with ReproServer(cfg) as server:
            threads = [
                threading.Thread(target=submit, args=(label,))
                for label in ("poison-me", "healthy")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        poisoned = outcomes["poison-me"]
        assert isinstance(poisoned, BatchExecutionError)
        assert poisoned.label == "poison-me"
        assert poisoned.batch_size == 2
        healthy = outcomes["healthy"]
        assert not isinstance(healthy, Exception)
        for run in direct.report.runs:
            assert np.array_equal(healthy.records(run.name), run.records)


class TestRequestFaultDrills:
    def test_reject_request_is_clean_503_then_recovers(self):
        cfg = serve_config(**{
            "resilience.faults": "reject_request:times=1:match=jobs",
        })
        with ReproServer(cfg) as server:
            with ServeClient(server.url) as client:
                # /healthz is out of scope for match=jobs.
                assert client.health()["status_code"] == 200
                with pytest.raises(ServeUnavailable, match="fault injection"):
                    client.submit("tradeoff")
                # The budget burned out: the retry goes through.
                assert client.submit("tradeoff").kind == "tradeoff"

    def test_slow_request_delays_but_succeeds(self):
        cfg = serve_config(**{
            "resilience.faults": "slow_request:seconds=0.2:times=1",
        })
        with ReproServer(cfg) as server:
            with ServeClient(server.url) as client:
                started = time.perf_counter()
                result = client.submit("tradeoff")
                assert time.perf_counter() - started >= 0.2
                assert result.kind == "tradeoff"

    def test_worker_crash_is_clean_job_scoped_error_not_a_hang(self):
        # The chaos drill: a sharded worker dies mid-request with no
        # rebuild budget and no fallback — the HTTP client must see a
        # prompt, typed 500, never a hung or severed connection.
        from repro.api import ServeError

        cfg = serve_config(**{
            "engine.backend": "sharded",
            "engine.workers": 2,
            # The trace planner batches unique tiles into stacks large
            # enough for the worker pool to engage (direct-mode lenet
            # stacks stay under the inline threshold).
            "engine.plan": "trace",
            "resilience.faults": "worker_crash",
            "resilience.max_pool_rebuilds": 0,
            "resilience.degrade_on_pool_failure": False,
            "resilience.retries": 0,
        })
        with ReproServer(cfg) as server:
            with ServeClient(server.url, timeout=120.0) as client:
                started = time.perf_counter()
                with pytest.raises(ServeError) as excinfo:
                    client.submit("run")
                elapsed = time.perf_counter() - started
        assert excinfo.value.status == 500
        assert "pool" in str(excinfo.value).lower()
        assert elapsed < 60  # a clean error, not a timeout


class TestGracefulDrain:
    def test_admin_drain_refuses_new_work_finishes_old(self):
        cfg = serve_config(**{"scheduler.coalesce_window_ms": 300.0})
        with ReproServer(cfg) as server:
            accepted: list = []

            def inflight() -> None:
                with ServeClient(server.url) as client:
                    accepted.append(client.submit("tradeoff"))

            thread = threading.Thread(target=inflight)
            thread.start()
            time.sleep(0.1)  # the job is accepted and queued
            with ServeClient(server.url) as client:
                assert client.drain()["status"] == "draining"
                assert client.health()["status_code"] == 503
                # /metrics keeps serving while draining.
                assert client.metrics()["server"]["draining"] is True
                with pytest.raises(ServeUnavailable, match="draining"):
                    client.submit("tradeoff")
            thread.join(timeout=60)
            # The accepted job completed despite the drain.
            assert len(accepted) == 1
            assert server.drain() is True

    def test_drain_is_idempotent(self):
        server = ReproServer(serve_config()).start()
        assert server.drain() is True
        assert server.drain() is True

    def test_unstarted_server_drains_without_hanging(self):
        server = ReproServer(serve_config())
        assert server.drain() is True


class TestServeCLI:
    """Subprocess drills of `repro serve` + `repro submit` + SIGTERM."""

    def _spawn_server(self, *extra: str) -> tuple[subprocess.Popen, str]:
        env = dict(os.environ, PYTHONUNBUFFERED="1", PYTHONPATH=_pythonpath())
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--set", "workload.model=lenet5",
             "--set", "workload.dataset=mnist",
             "--set", "engine.backend=fused",
             "--set", "engine.plan=trace",
             *extra],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        line = proc.stdout.readline()
        match = re.search(r"http://\S+", line)
        assert match, f"no URL in first serve line: {line!r}"
        return proc, match.group(0)

    def test_sigterm_drain_loses_zero_accepted_jobs(self):
        proc, url = self._spawn_server(
            "--set", "scheduler.coalesce_window_ms=300",
        )
        try:
            outcomes: list[object] = []
            lock = threading.Lock()

            def submit(index: int) -> None:
                try:
                    with ServeClient(url, timeout=120.0) as client:
                        result = client.submit(
                            "run", tenant=f"t{index % 2}", records="digest"
                        )
                    with lock:
                        outcomes.append(result)
                except Exception as exc:  # noqa: BLE001 - asserted below
                    with lock:
                        outcomes.append(exc)

            threads = [
                threading.Thread(target=submit, args=(index,))
                for index in range(6)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.15)  # inside the coalesce window: jobs queued
            proc.send_signal(signal.SIGTERM)
            for thread in threads:
                thread.join(timeout=120)
            output, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, output
        assert "draining" in output and "drained cleanly" in output
        # Zero accepted-job loss: every request either completed (200)
        # or was refused cleanly *before* acceptance (503 draining).
        # Anything else — severed connections, empty replies — fails.
        completed = [o for o in outcomes if not isinstance(o, Exception)]
        refused = [o for o in outcomes if isinstance(o, ServeUnavailable)]
        assert len(completed) + len(refused) == 6, outcomes
        assert completed, "SIGTERM cut off every in-flight job"
        for result in completed:
            assert result.report["runs"]

    def test_submit_cli_mixed_tenants_and_metrics_footer(self):
        proc, url = self._spawn_server()
        try:
            out = subprocess.run(
                [sys.executable, "-m", "repro.cli", "submit", "--url", url,
                 "--count", "4", "--tenant", "acme", "--tenant", "globex",
                 "--priority", "interactive", "--priority", "batch"],
                capture_output=True, text=True, timeout=300,
                env=dict(os.environ, PYTHONPATH=_pythonpath()),
            )
            assert out.returncode == 0, out.stdout + out.stderr
            assert "acme" in out.stdout and "globex" in out.stdout
            assert "job(s) submitted" in out.stdout
            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0, output
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

    def test_submit_cli_unreachable_url_fails_per_job(self):
        # A bad --url (nothing listening, or malformed) must produce
        # per-job FAILED rows and exit 1 — never an unhandled traceback.
        out = subprocess.run(
            [sys.executable, "-m", "repro.cli", "submit",
             "--url", "http://127.0.0.1:9", "--count", "2"],
            capture_output=True, text=True, timeout=120,
            env=dict(os.environ, PYTHONPATH=_pythonpath()),
        )
        assert out.returncode == 1, out.stdout + out.stderr
        assert "Traceback" not in out.stderr
        assert out.stdout.count("FAILED") == 2
        assert "repro: submit job failed: submit-0" in out.stderr


class TestMetricsEndpoint:
    def test_snapshot_shape(self):
        with ReproServer(serve_config()) as server:
            with ServeClient(server.url) as client:
                client.submit("tradeoff", priority="batch")
                metrics = client.metrics()
        server_view = metrics["server"]
        assert server_view["requests_total"] == 1
        assert server_view["requests_by_status"] == {"200": 1}
        latency = server_view["latency_ms"]
        assert latency["all"]["count"] == 1
        assert latency["by_priority"]["batch"]["count"] == 1
        assert latency["by_priority"]["interactive"]["count"] == 0
        assert sum(latency["all"]["buckets"].values()) == 1
        assert metrics["queue"] == {
            "queued": 0, "by_tenant": {}, "by_priority": {},
        }
        stats = metrics["scheduler"]
        assert stats["jobs_submitted"] == 1
        assert "store_hits" in stats

    def test_error_statuses_counted(self):
        with ReproServer(serve_config()) as server:
            with ServeClient(server.url) as client:
                with pytest.raises(ServeRequestError):
                    client.submit("fly")
                metrics = client.metrics()
        assert metrics["server"]["requests_by_status"]["400"] == 1


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-v"]))
