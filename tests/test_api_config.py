"""RunConfig: validation, TOML/JSON round-trips, immutable overrides."""

from __future__ import annotations

import json

import pytest

from repro.api import RunConfig
from repro.api.config import tomllib
from repro.engine import get_backend


class TestValidation:
    def test_defaults_are_valid(self):
        cfg = RunConfig()
        assert cfg.engine.backend == "vectorized"
        assert cfg.workload.model == "vgg16"

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            RunConfig().with_overrides({"engine.backend": "bogus"})

    def test_workers_on_non_sharded_backend(self):
        with pytest.raises(ValueError, match="does not accept"):
            RunConfig().with_overrides(
                {"engine.backend": "vectorized", "engine.workers": 2}
            )

    def test_workers_rejection_wording_matches_backend_layer(self):
        """Satellite contract: config-time and construction-time rejection
        of ``workers`` raise the identical ValueError wording."""
        with pytest.raises(ValueError) as config_err:
            RunConfig().with_overrides(
                {"engine.backend": "fused", "engine.workers": 2}
            )
        with pytest.raises(ValueError) as backend_err:
            get_backend("fused", workers=2)
        assert str(config_err.value) == str(backend_err.value)

    def test_workers_on_sharded_accepted(self):
        cfg = RunConfig().with_overrides(
            {"engine.backend": "sharded", "engine.workers": 2}
        )
        assert cfg.engine.workers == 2

    def test_workers_below_one(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            RunConfig().with_overrides(
                {"engine.backend": "sharded", "engine.workers": 0}
            )

    def test_bad_plan(self):
        with pytest.raises(ValueError, match="unknown plan mode"):
            RunConfig().with_overrides({"engine.plan": "bogus"})

    def test_bad_preset(self):
        with pytest.raises(ValueError, match="unknown preset"):
            RunConfig().with_overrides({"workload.preset": "huge"})

    def test_bad_batch(self):
        with pytest.raises(ValueError, match="batch must be >= 1"):
            RunConfig().with_overrides({"engine.batch": 0})

    def test_bad_tile_shape(self):
        with pytest.raises(ValueError):
            RunConfig().with_overrides({"engine.tile_k": 0})

    def test_bad_mode(self):
        with pytest.raises(ValueError, match="unknown mode"):
            RunConfig().with_overrides({"simulator.mode": "warp"})

    def test_unknown_baseline(self):
        with pytest.raises(ValueError, match="unknown baseline"):
            RunConfig().with_overrides({"simulator.baselines": ("tpu",)})

    def test_empty_baselines(self):
        with pytest.raises(ValueError, match="at least one accelerator"):
            RunConfig().with_overrides({"simulator.baselines": ()})
        with pytest.raises(ValueError, match="at least one accelerator"):
            RunConfig().with_sets(["simulator.baselines="])

    def test_negative_max_tiles(self):
        with pytest.raises(ValueError, match="max_tiles must be >= 0"):
            RunConfig().with_overrides({"sampling.max_tiles": -1})

    def test_empty_sweep_axis(self):
        with pytest.raises(ValueError, match="m_values"):
            RunConfig().with_overrides({"sweep.m_values": ()})

    def test_scheduler_defaults(self):
        sched = RunConfig().scheduler
        assert sched.max_inflight >= 1
        assert sched.coalesce_window_ms >= 0
        assert sched.stream_chunk >= 1

    def test_bad_max_inflight(self):
        with pytest.raises(ValueError, match="max_inflight must be >= 1"):
            RunConfig().with_overrides({"scheduler.max_inflight": 0})

    def test_bad_coalesce_window(self):
        with pytest.raises(ValueError, match="coalesce_window_ms must be >= 0"):
            RunConfig().with_overrides({"scheduler.coalesce_window_ms": -1.0})

    def test_bad_stream_chunk(self):
        with pytest.raises(ValueError, match="stream_chunk must be >= 1"):
            RunConfig().with_overrides({"scheduler.stream_chunk": 0})

    def test_negative_sparsity_increase(self):
        with pytest.raises(ValueError, match="sparsity_increase"):
            RunConfig().with_overrides({"tradeoff.sparsity_increase": -0.5})


class TestDictRoundTrip:
    def test_to_dict_from_dict_identity(self):
        cfg = RunConfig().with_overrides(
            {"engine.backend": "sharded", "engine.workers": 3,
             "workload.model": "lenet5", "sweep.k_values": (8, 16)}
        )
        assert RunConfig.from_dict(cfg.to_dict()) == cfg

    def test_to_dict_drops_none(self):
        assert "workers" not in RunConfig().to_dict()["engine"]

    def test_unknown_section(self):
        with pytest.raises(ValueError, match="unknown config section"):
            RunConfig.from_dict({"warp": {}})

    def test_unknown_key(self):
        with pytest.raises(ValueError, match=r"unknown key\(s\).*\[engine\]"):
            RunConfig.from_dict({"engine": {"speed": 11}})

    def test_partial_dict_fills_defaults(self):
        cfg = RunConfig.from_dict({"workload": {"model": "lenet5"}})
        assert cfg.workload.model == "lenet5"
        assert cfg.workload.dataset == "cifar10"
        assert cfg.engine == RunConfig().engine


@pytest.mark.skipif(tomllib is None, reason="no TOML reader on this Python")
class TestFileRoundTrip:
    CFG = {
        "workload.model": "lenet5",
        "workload.dataset": "mnist",
        "engine.backend": "fused",
        "engine.plan": "trace",
        "sampling.max_tiles": 0,
        "sweep.m_values": (64, 128),
    }

    def test_toml_round_trip_idempotent(self, tmp_path):
        cfg = RunConfig().with_overrides(self.CFG)
        path = tmp_path / "run.toml"
        cfg.to_file(path)
        loaded = RunConfig.from_file(path)
        assert loaded == cfg
        # Idempotence: dumping the loaded config reproduces the bytes.
        assert loaded.to_toml() == path.read_text()

    def test_json_round_trip_idempotent(self, tmp_path):
        cfg = RunConfig().with_overrides(self.CFG)
        path = tmp_path / "run.json"
        cfg.to_file(path)
        loaded = RunConfig.from_file(path)
        assert loaded == cfg
        assert loaded.to_json() == path.read_text()

    def test_toml_and_json_agree(self, tmp_path):
        cfg = RunConfig().with_overrides(self.CFG)
        toml_path = cfg.to_file(tmp_path / "a.toml")
        json_path = cfg.to_file(tmp_path / "a.json")
        assert RunConfig.from_file(toml_path) == RunConfig.from_file(json_path)

    def test_emitted_toml_is_valid_toml(self):
        parsed = tomllib.loads(RunConfig().to_toml())
        assert parsed["workload"]["model"] == "vgg16"
        assert parsed["sweep"]["m_values"] == [64, 128, 256, 512]

    def test_emitted_json_is_valid_json(self):
        parsed = json.loads(RunConfig().to_json())
        assert parsed["engine"]["backend"] == "vectorized"

    def test_unsupported_suffix(self, tmp_path):
        with pytest.raises(ValueError, match=".toml or .json"):
            RunConfig().to_file(tmp_path / "run.yaml")
        with pytest.raises(ValueError, match=".toml or .json"):
            RunConfig.from_file(tmp_path / "run.yaml")


class TestTomlEmitterEdgeCases:
    """Satellite contract: the hand-rolled TOML emitter survives strings
    needing escaping/quotes, booleans, empty sections, and ``--set``
    values containing ``=`` — and every round-trip stays idempotent."""

    def _round_trip(self, cfg: RunConfig) -> RunConfig:
        if tomllib is None:
            pytest.skip("no TOML reader on this Python")
        text = cfg.to_toml()
        loaded = RunConfig.from_dict(tomllib.loads(text))
        # Idempotent: emitting the parsed config reproduces the text.
        assert loaded.to_toml() == text
        return loaded

    @pytest.mark.parametrize("model", [
        'say "hi"',                 # double quotes
        "back\\slash",              # backslash
        "tab\there",                # control character
        "newline\nhere",            # must escape, not break the line
        "uniécode",            # non-ASCII passes through
        "equals=inside",            # '=' in a value
        "#not-a-comment",           # comment introducer in a value
        "[not.a.section]",          # section introducer in a value
    ])
    def test_string_escaping_round_trips(self, model):
        cfg = RunConfig().with_overrides({"workload.model": model})
        assert self._round_trip(cfg).workload.model == model

    def test_booleans_round_trip(self):
        for verify in (True, False):
            cfg = RunConfig().with_overrides({"engine.verify": verify})
            assert "verify = true" in cfg.to_toml() or not verify
            assert self._round_trip(cfg).engine.verify is verify

    def test_empty_section_reads_as_defaults(self):
        if tomllib is None:
            pytest.skip("no TOML reader on this Python")
        text = "[workload]\n\n[engine]\nbackend = \"fused\"\n"
        loaded = RunConfig.from_dict(tomllib.loads(text))
        assert loaded.workload == RunConfig().workload
        assert loaded.engine.backend == "fused"

    def test_empty_entries_emit_bare_header(self):
        from repro.api.config import _toml_value

        # The emitter writes a bare [section] header for an empty
        # section; tomllib reads it back as an empty table.
        assert _toml_value("x") == '"x"'
        cfg = RunConfig()
        headers = [
            line for line in cfg.to_toml().splitlines()
            if line.startswith("[")
        ]
        assert headers == [f"[{name}]" for name in cfg.to_dict()]

    def test_set_value_containing_equals(self):
        cfg = RunConfig().with_sets(["workload.model=resnet=18"])
        assert cfg.workload.model == "resnet=18"
        cfg = RunConfig().with_sets(["workload.dataset=a=b=c"])
        assert cfg.workload.dataset == "a=b=c"
        # ...and such a value still survives the file round-trip.
        assert self._round_trip(cfg).workload.dataset == "a=b=c"

    def test_unserializable_value_rejected(self):
        from repro.api.config import _toml_value

        with pytest.raises(TypeError, match="cannot serialize"):
            _toml_value(object())

    def test_float_and_int_round_trip(self):
        cfg = RunConfig().with_overrides({
            "tradeoff.sparsity_increase": 0.25,
            "scheduler.coalesce_window_ms": 12.5,
            "scheduler.max_inflight": 7,
        })
        loaded = self._round_trip(cfg)
        assert loaded.tradeoff.sparsity_increase == 0.25
        assert loaded.scheduler.coalesce_window_ms == 12.5
        assert loaded.scheduler.max_inflight == 7


class TestOverrides:
    def test_with_overrides_returns_new_instance(self):
        base = RunConfig()
        derived = base.with_overrides({"engine.backend": "fused"})
        assert derived.engine.backend == "fused"
        assert base.engine.backend == "vectorized"  # immutability
        assert derived is not base

    def test_frozen_sections(self):
        cfg = RunConfig()
        with pytest.raises(AttributeError):
            cfg.engine.backend = "fused"  # type: ignore[misc]
        with pytest.raises(AttributeError):
            cfg.workload = cfg.workload  # type: ignore[misc]

    def test_section_kwargs(self):
        cfg = RunConfig().with_overrides(workload={"model": "lenet5",
                                                   "dataset": "mnist"})
        assert (cfg.workload.model, cfg.workload.dataset) == ("lenet5", "mnist")

    def test_bad_dotted_key(self):
        with pytest.raises(ValueError, match="section.key"):
            RunConfig().with_overrides({"backend": "fused"})

    def test_unknown_override_key(self):
        with pytest.raises(ValueError, match=r"unknown key\(s\)"):
            RunConfig().with_overrides({"engine.speed": 11})

    def test_list_coerced_to_tuple(self):
        cfg = RunConfig().with_overrides({"sweep.m_values": [32, 64]})
        assert cfg.sweep.m_values == (32, 64)


class TestWithSets:
    def test_type_coercion(self):
        cfg = RunConfig().with_sets([
            "engine.backend=sharded",
            "engine.workers=4",
            "engine.verify=true",
            "sampling.max_tiles=0",
            "sweep.m_values=64,128",
            "tradeoff.sparsity_increase=0.2",
        ])
        assert cfg.engine.backend == "sharded"
        assert cfg.engine.workers == 4
        assert cfg.engine.verify is True
        assert cfg.sampling.max_tiles == 0
        assert cfg.sampling.effective is None
        assert cfg.sweep.m_values == (64, 128)
        assert cfg.tradeoff.sparsity_increase == pytest.approx(0.2)

    def test_none_for_optional(self):
        base = RunConfig().with_sets(["engine.backend=sharded",
                                      "engine.workers=2"])
        cleared = base.with_sets(["engine.workers=none"])
        assert cleared.engine.workers is None

    def test_missing_equals(self):
        with pytest.raises(ValueError, match="section.key=value"):
            RunConfig().with_sets(["engine.backend"])

    def test_unknown_key(self):
        with pytest.raises(ValueError, match="unknown key"):
            RunConfig().with_sets(["engine.speed=11"])

    def test_bad_bool(self):
        with pytest.raises(ValueError, match="boolean"):
            RunConfig().with_sets(["engine.verify=maybe"])


class TestResilienceSection:
    def test_defaults(self):
        res = RunConfig().resilience
        assert res.overload_policy == "block"
        assert res.shed_timeout_ms == 100.0
        assert res.deadline_ms == 0.0
        assert res.retries == 1
        assert res.retry_backoff_ms == 10.0
        assert res.max_pool_rebuilds == 2
        assert res.degrade_on_pool_failure is True
        assert res.faults == ""

    def test_overrides_and_round_trip(self):
        cfg = RunConfig().with_overrides({
            "resilience.overload_policy": "shed",
            "resilience.shed_timeout_ms": 250.0,
            "resilience.deadline_ms": 5000.0,
            "resilience.retries": 3,
            "resilience.max_pool_rebuilds": 0,
            "resilience.degrade_on_pool_failure": False,
            "resilience.faults": "engine_error:times=2",
        })
        assert RunConfig.from_dict(cfg.to_dict()) == cfg

    @pytest.mark.skipif(tomllib is None, reason="no TOML reader")
    def test_toml_section_round_trip(self, tmp_path):
        cfg = RunConfig().with_overrides({
            "resilience.overload_policy": "shed",
            "resilience.faults": "poison_job:match=bad",
        })
        path = cfg.to_file(tmp_path / "run.toml")
        loaded = RunConfig.from_file(path)
        assert loaded == cfg
        assert loaded.resilience.faults == "poison_job:match=bad"
        parsed = tomllib.loads(cfg.to_toml())
        assert parsed["resilience"]["overload_policy"] == "shed"

    def test_with_sets_coercion(self):
        cfg = RunConfig().with_sets([
            "resilience.overload_policy=shed",
            "resilience.shed_timeout_ms=75",
            "resilience.retries=0",
            "resilience.degrade_on_pool_failure=false",
        ])
        assert cfg.resilience.overload_policy == "shed"
        assert cfg.resilience.shed_timeout_ms == 75.0
        assert cfg.resilience.retries == 0
        assert cfg.resilience.degrade_on_pool_failure is False

    def test_bad_overload_policy(self):
        with pytest.raises(ValueError, match="unknown overload_policy"):
            RunConfig().with_overrides({"resilience.overload_policy": "panic"})

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError, match="shed_timeout_ms"):
            RunConfig().with_overrides({"resilience.shed_timeout_ms": -1.0})
        with pytest.raises(ValueError, match="deadline_ms"):
            RunConfig().with_overrides({"resilience.deadline_ms": -1.0})
        with pytest.raises(ValueError, match="retries must be >= 0"):
            RunConfig().with_overrides({"resilience.retries": -1})
        with pytest.raises(ValueError, match="max_pool_rebuilds"):
            RunConfig().with_overrides({"resilience.max_pool_rebuilds": -1})

    def test_bad_fault_spec_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            RunConfig().with_overrides({"resilience.faults": "meteor_strike"})
        with pytest.raises(ValueError, match="requires match"):
            RunConfig().with_overrides({"resilience.faults": "poison_job"})
