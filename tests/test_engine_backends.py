"""Backend equivalence: the vectorized path must match the reference oracle.

Property-style sweep over random spike matrices at varied densities, row
correlations, and tile shapes: forests, tile records, aggregate stats, and
(for integer weights) dense GeMM outputs must be *identical* between
backends — the paper's lossless claim, checked per backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.forest import build_forest
from repro.core.prosparsity import execute_gemm, transform_matrix
from repro.core.reference import dense_spiking_gemm
from repro.core.spike_matrix import SpikeTile, random_spike_matrix
from repro.engine.backends import (
    Backend,
    ReferenceBackend,
    VectorizedBackend,
    available_backends,
    chain_depths,
    get_backend,
    max_chain_depth,
    pack_codes,
    register_backend,
    select_prefixes_codes,
)
from repro.utils.bitops import popcount_rows

DENSITIES = (0.01, 0.05, 0.15, 0.3, 0.6, 0.95)


def _random_cases(rng):
    """Matrix shapes crossing word widths, edge tiles, and EM-rich inputs."""
    for density in DENSITIES:
        for rows, cols, correlation in (
            (64, 16, 0.0),
            (256, 16, 0.4),
            (100, 30, 0.7),   # edge tiles in both dimensions
            (48, 130, 0.3),   # beyond one 64-bit word
        ):
            yield random_spike_matrix(rows, cols, density, rng, correlation)


class TestForestEquivalence:
    def test_forests_identical_across_densities(self, rng):
        backend = VectorizedBackend()
        for matrix in _random_cases(rng):
            tile = SpikeTile(matrix.bits)
            reference = build_forest(tile)
            vectorized = backend.forest(tile)
            assert np.array_equal(reference.prefix, vectorized.prefix)
            assert np.array_equal(reference.pattern, vectorized.pattern)
            assert np.array_equal(reference.popcounts, vectorized.popcounts)

    def test_paper_example_forest(self, paper_tile):
        reference = build_forest(paper_tile)
        vectorized = VectorizedBackend().forest(paper_tile)
        assert np.array_equal(reference.prefix, vectorized.prefix)
        assert np.array_equal(reference.pattern, vectorized.pattern)

    def test_records_identical(self, rng):
        backend = VectorizedBackend()
        oracle = ReferenceBackend()
        for matrix in _random_cases(rng):
            for tile_m, tile_k in ((64, 16), (32, 8)):
                ref = oracle.matrix_records(matrix, tile_m, tile_k)
                vec = backend.matrix_records(matrix, tile_m, tile_k)
                assert np.array_equal(ref, vec)

    def test_records_match_core_transform(self, rng):
        matrix = random_spike_matrix(300, 40, 0.25, rng, 0.5)
        core = transform_matrix(matrix, 64, 16, keep_transforms=False)
        vec = VectorizedBackend().matrix_records(matrix, 64, 16)
        assert np.array_equal(core.tile_records, vec)


class TestExecutionEquivalence:
    def test_integer_gemm_bit_identical(self, rng):
        for matrix in _random_cases(rng):
            weights = rng.integers(-8, 8, size=(matrix.cols, 12))
            expected = dense_spiking_gemm(matrix.bits, weights)
            for name in available_backends():
                backend = get_backend(name)
                tile = SpikeTile(matrix.bits)
                out = backend.execute(backend.forest(tile), weights)
                assert out.dtype == np.int64
                assert np.array_equal(out, expected), name

    def test_backends_agree_bitwise_on_ints(self, rng):
        matrix = random_spike_matrix(256, 16, 0.3, rng, 0.4)
        weights = rng.integers(-100, 100, size=(16, 64))
        tile = SpikeTile(matrix.bits)
        outputs = [
            get_backend(name).execute(build_forest(tile), weights)
            for name in available_backends()
        ]
        for out in outputs[1:]:
            assert np.array_equal(outputs[0], out)

    def test_float_gemm_allclose(self, rng):
        matrix = random_spike_matrix(128, 16, 0.3, rng, 0.4)
        weights = rng.normal(size=(16, 10))
        tile = SpikeTile(matrix.bits)
        forest = build_forest(tile)
        reference = ReferenceBackend().execute(forest, weights)
        vectorized = VectorizedBackend().execute(forest, weights)
        assert reference.dtype == vectorized.dtype == np.float64
        np.testing.assert_allclose(reference, vectorized, rtol=1e-12, atol=1e-12)

    def test_vectorized_execute_rejects_bad_weights(self, rng):
        tile = SpikeTile((rng.random((8, 4)) < 0.5))
        forest = VectorizedBackend().forest(tile)
        with pytest.raises(ValueError, match="weight rows"):
            VectorizedBackend().execute(forest, rng.normal(size=(5, 3)))

    def test_deep_chain_execution(self):
        """Staircase tile: every row prefixes the next (max-depth forest)."""
        bits = np.tril(np.ones((16, 16), dtype=bool))
        tile = SpikeTile(bits)
        weights = np.arange(16 * 4).reshape(16, 4).astype(np.int64)
        forest = VectorizedBackend().forest(tile)
        out = VectorizedBackend().execute(forest, weights)
        assert np.array_equal(out, dense_spiking_gemm(bits, weights))
        assert max_chain_depth(forest.prefix) == 15


class TestVectorizedPrimitives:
    def test_pack_codes_widths(self, rng):
        for cols in (3, 8, 9, 16, 33, 64, 65, 130, 200):
            bits = rng.random((10, cols)) < 0.5
            packed = np.packbits(bits, axis=1)
            codes = pack_codes(packed)
            assert codes.shape[0] == 10
            # Codes are a bijection: equal rows <-> equal codes.
            for i in range(10):
                for j in range(10):
                    assert (codes[i] == codes[j]).all() == (
                        (bits[i] == bits[j]).all()
                    )

    def test_select_prefixes_empty_tile(self):
        codes = pack_codes(np.zeros((0, 2), dtype=np.uint8))
        assert select_prefixes_codes(codes, np.zeros(0, dtype=np.int64)).size == 0

    def test_chain_depths_matches_forest_depth(self, rng):
        for matrix in _random_cases(rng):
            tile = SpikeTile(matrix.bits)
            forest = build_forest(tile)
            depths = chain_depths(forest.prefix)
            assert int(depths.max(initial=0)) == forest.depth()
            assert max_chain_depth(forest.prefix) == forest.depth()

    def test_popcount_consistency(self, rng):
        bits = rng.random((32, 100)) < 0.4
        tile = SpikeTile(bits)
        assert np.array_equal(popcount_rows(tile.packed), bits.sum(axis=1))


class TestRegistry:
    def test_available_backends(self):
        assert "reference" in available_backends()
        assert "vectorized" in available_backends()
        assert "fused" in available_backends()
        assert "sharded" in available_backends()

    def test_get_backend_passthrough(self):
        backend = VectorizedBackend()
        assert get_backend(backend) is backend

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("quantum")

    def test_register_custom_backend(self):
        class EchoBackend(ReferenceBackend):
            name = "echo-test"

        try:
            register_backend(EchoBackend)
            assert isinstance(get_backend("echo-test"), EchoBackend)
            assert isinstance(get_backend("echo-test"), Backend)
        finally:
            from repro.engine import backends as backend_module

            backend_module._BACKENDS.pop("echo-test", None)


class TestEndToEndGemm:
    def test_gemm_against_core_path(self, rng):
        """Whole-matrix GeMM: engine tiles + both backends == core path."""
        from repro.engine import ProsperityEngine

        matrix = random_spike_matrix(150, 70, 0.2, rng, 0.3)
        weights = rng.integers(-16, 16, size=(70, 20))
        expected = execute_gemm(matrix, weights, tile_m=64, tile_k=16)
        assert np.array_equal(expected, dense_spiking_gemm(matrix.bits, weights))
        for name in available_backends():
            engine = ProsperityEngine(backend=name, tile_m=64, tile_k=16)
            out = engine.execute_gemm(matrix, weights)
            assert np.array_equal(out, expected), name
            assert out.dtype == expected.dtype
