"""Cross-module integration tests: SNN -> trace -> transform -> simulate."""

import numpy as np
import pytest

from repro.arch.ppu import MODE_BIT, MODE_PROSPERITY, PPU
from repro.arch.config import ProsperityConfig
from repro.arch.simulator import ProsperitySimulator
from repro.baselines import EyerissModel, PTBModel
from repro.core.prosparsity import execute_gemm
from repro.core.reference import dense_spiking_gemm
from repro.workloads import FIG8_GRID, FIG11_GRID, get_trace


class TestWorkloadRegistry:
    def test_grids_well_formed(self):
        assert len(FIG8_GRID) == 16
        assert len(FIG11_GRID) == 18
        assert len(set(FIG8_GRID)) == 16

    def test_cache_returns_same_object(self):
        a = get_trace("lenet5", "mnist", preset="small")
        b = get_trace("lenet5", "mnist", preset="small")
        assert a is b

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            get_trace("vgg16", "cifar10", preset="huge")


class TestEndToEndLossless:
    """Real SNN layer activations through the full ProSparsity pipeline."""

    def test_vgg_layer_gemm_exact(self, vgg_trace, rng):
        workload = vgg_trace.workloads[2]
        weights = rng.integers(-64, 64, size=(workload.k, min(workload.n, 16)))
        out = execute_gemm(workload.spikes, weights)
        assert (out == dense_spiking_gemm(workload.spikes.bits, weights)).all()

    def test_functional_ppu_matches_core_on_real_tile(self, vgg_trace, rng):
        workload = vgg_trace.workloads[1]
        tile_bits = workload.spikes.bits[:64, :16]
        config = ProsperityConfig(tile_m=64, tile_k=16, tile_n=8, num_pes=8,
                                  tcam_entries=64)
        ppu = PPU(config)
        weights = rng.normal(size=(16, 8))
        np.testing.assert_allclose(
            ppu.process_tile(tile_bits, weights),
            dense_spiking_gemm(tile_bits, weights),
            atol=1e-9,
        )


class TestEndToEndPerformance:
    def test_prosperity_beats_bit_on_real_models(self, vgg_trace):
        rng = np.random.default_rng(0)
        pro = ProsperitySimulator(
            mode=MODE_PROSPERITY, max_tiles_per_workload=24, rng=rng
        ).simulate(vgg_trace)
        bit = ProsperitySimulator(
            mode=MODE_BIT, max_tiles_per_workload=24, rng=rng
        ).simulate(vgg_trace)
        assert bit.cycles / pro.cycles > 1.5

    def test_transformer_trace_simulates_everywhere(self, transformer_trace):
        pro = ProsperitySimulator(
            max_tiles_per_workload=8, rng=np.random.default_rng(0)
        ).simulate(transformer_trace)
        ptb = PTBModel().simulate(transformer_trace)
        # PTB only runs linear layers (Sec. VII-A), Prosperity runs all.
        assert len(pro.layers) == len(transformer_trace.workloads)
        assert len(ptb.layers) < len(transformer_trace.workloads)

    def test_full_stack_speedup_vs_eyeriss(self, vgg_trace):
        eyeriss = EyerissModel().simulate(vgg_trace)
        pro = ProsperitySimulator(
            max_tiles_per_workload=24, rng=np.random.default_rng(0)
        ).simulate(vgg_trace)
        assert eyeriss.seconds / pro.seconds > 4.0


class TestDensityShapeClaims:
    def test_density_reduction_in_paper_band(self):
        """Fig. 11 claim: product density well below bit density, with
        reductions in the 2-20x band across model families."""
        for model, dataset in (("vgg9", "cifar10"), ("lenet5", "mnist")):
            trace = get_trace(model, dataset, preset="small")
            from repro.analysis.density import trace_prosparsity_stats

            stats = trace_prosparsity_stats(
                trace, max_tiles=8, rng=np.random.default_rng(0)
            )
            assert 1.5 < stats.ops_reduction < 50.0
