"""Tests for EM/PM/intersection relation detection."""

import numpy as np
import pytest

from repro.core.relations import (
    Relation,
    classify_pair,
    exact_match_matrix,
    subset_relation_matrix,
    summarize_relations,
)
from repro.core.spike_matrix import SpikeTile


class TestClassifyPair:
    def test_exact_match(self):
        row = np.array([1, 1, 0, 1], dtype=bool)
        assert classify_pair(row, row.copy()) == Relation.EXACT_MATCH

    def test_partial_match_direction(self):
        big = np.array([1, 1, 0, 1], dtype=bool)
        small = np.array([1, 0, 0, 1], dtype=bool)
        # small is a proper subset of big -> PM seen from big
        assert classify_pair(big, small) == Relation.PARTIAL_MATCH
        assert classify_pair(small, big) == Relation.INTERSECTION

    def test_intersection(self):
        a = np.array([1, 1, 0, 0], dtype=bool)
        b = np.array([0, 1, 1, 0], dtype=bool)
        assert classify_pair(a, b) == Relation.INTERSECTION

    def test_disjoint(self):
        a = np.array([1, 0, 0, 0], dtype=bool)
        b = np.array([0, 1, 0, 0], dtype=bool)
        assert classify_pair(a, b) == Relation.NONE

    def test_paper_example(self):
        # Fig. 2c: Row 1 (1001) is a proper subset of Row 4 (1101).
        row4 = np.array([1, 1, 0, 1], dtype=bool)
        row1 = np.array([1, 0, 0, 1], dtype=bool)
        assert classify_pair(row4, row1) == Relation.PARTIAL_MATCH

    def test_rejects_mismatched_length(self):
        with pytest.raises(ValueError):
            classify_pair(np.ones(3, dtype=bool), np.ones(4, dtype=bool))


class TestSubsetRelationMatrix:
    def test_paper_tile(self, paper_tile):
        subset = subset_relation_matrix(paper_tile)
        assert subset[2, 3]      # 0010 ⊆ 1011
        assert subset[4, 1]      # 1001 ⊆ 1101
        assert subset[5, 4] and subset[4, 5]  # EM pair both directions
        assert not subset[0, 1]  # 1001 ⊄ 1010

    def test_diagonal_false(self, paper_tile):
        subset = subset_relation_matrix(paper_tile)
        assert not subset.diagonal().any()

    def test_empty_rows_never_subsets(self):
        tile = SpikeTile(np.array([[0, 0], [1, 1]], dtype=bool))
        subset = subset_relation_matrix(tile)
        assert not subset[:, 0].any()  # empty row excluded as prefix


class TestExactMatchMatrix:
    def test_symmetric(self, paper_tile):
        em = exact_match_matrix(paper_tile)
        assert (em == em.T).all()

    def test_only_identical_rows(self, paper_tile):
        em = exact_match_matrix(paper_tile)
        pairs = set(zip(*np.nonzero(em)))
        assert pairs == {(4, 5), (5, 4)}


class TestSummarize:
    def test_counts_sum_to_pairs(self, paper_tile):
        summary = summarize_relations(paper_tile)
        m = paper_tile.m
        assert summary.total_pairs == m * (m - 1) // 2

    def test_paper_tile_has_em(self, paper_tile):
        summary = summarize_relations(paper_tile)
        assert summary.exact_match == 1  # rows 4/5

    def test_all_identical(self):
        tile = SpikeTile(np.tile(np.array([[1, 0, 1]], dtype=bool), (4, 1)))
        summary = summarize_relations(tile)
        assert summary.exact_match == 6  # C(4,2)
        assert summary.partial_match == 0
