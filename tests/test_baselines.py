"""Tests for the baseline accelerator models."""

import numpy as np
import pytest

from repro.arch.simulator import ProsperitySimulator
from repro.baselines import (
    BASELINES,
    A100Model,
    EyerissModel,
    PTBModel,
    SATOModel,
    activation_density_with_prosparsity,
    dual_sparse_ops,
    fs_density,
    pruned_weight_mask,
    windowed_density,
)
from repro.core.spike_matrix import SpikeMatrix
from repro.snn.trace import GeMMWorkload, ModelTrace


@pytest.fixture(scope="module")
def mixed_trace():
    rng = np.random.default_rng(11)
    linear = GeMMWorkload(
        "fc", SpikeMatrix(rng.random((256, 128)) < 0.3), 64, kind="linear",
        time_steps=4,
    )
    attn = GeMMWorkload(
        "attn", SpikeMatrix(rng.random((64, 64)) < 0.2), 32, kind="attention",
    )
    return ModelTrace("toy", "synthetic", [linear, attn])


class TestInterface:
    @pytest.mark.parametrize("name", sorted(BASELINES))
    def test_all_baselines_simulate(self, name, mixed_trace):
        report = BASELINES[name]().simulate(mixed_trace)
        assert report.cycles > 0
        assert report.energy_j > 0

    def test_asics_drop_attention(self, mixed_trace):
        report = PTBModel().simulate(mixed_trace)
        assert len(report.layers) == 1  # attention workload dropped

    def test_gpu_keeps_attention(self, mixed_trace):
        report = A100Model().simulate(mixed_trace)
        assert len(report.layers) == 2


class TestPTB:
    def test_windowed_density_at_least_bit_density(self, mixed_trace):
        w = mixed_trace.workloads[0]
        assert windowed_density(w, 4) >= w.bit_density

    def test_windowed_density_all_or_nothing(self):
        # A single spike in a window forces the whole window.
        bits = np.zeros((4, 8), dtype=bool)
        bits[0, 0] = True  # one spike at t=0, position 0 (1 position total: m=4=T)
        w = GeMMWorkload("x", SpikeMatrix(bits), 4, time_steps=4)
        assert windowed_density(w, 4) == pytest.approx(1 / 8)

    def test_dense_windows_cost_full(self):
        bits = np.ones((8, 4), dtype=bool)
        w = GeMMWorkload("x", SpikeMatrix(bits), 4, time_steps=4)
        assert windowed_density(w, 4) == 1.0


class TestSATO:
    def test_imbalance_penalty(self):
        """A single long row stalls its whole round."""
        rng = np.random.default_rng(0)
        model = SATOModel()
        balanced = np.full(32, 10)
        skewed = np.full(32, 10)
        skewed[::16] = 100  # one straggler per round
        assert model.round_cycles(skewed, 64) > model.round_cycles(balanced, 64)


class TestStellar:
    def test_fs_density_below_bit_density_for_lif_traces(self, vgg_trace):
        for w in vgg_trace.workloads[:3]:
            assert fs_density(w) < w.bit_density

    def test_fs_density_bounds(self, mixed_trace):
        for w in mixed_trace.workloads:
            assert 0.0 <= fs_density(w) <= 2.0 / 8.0 + 1e-9  # <= max_spikes/window


class TestLoAS:
    def test_weight_mask_density(self):
        rng = np.random.default_rng(1)
        mask = pruned_weight_mask(512, 512, 0.018, rng)
        assert abs(mask.mean() - 0.018) < 0.005

    def test_mask_rejects_bad_density(self):
        with pytest.raises(ValueError):
            pruned_weight_mask(8, 8, 0.0, np.random.default_rng(0))

    def test_dual_sparse_ops_scale_with_weight_density(self, mixed_trace):
        w = mixed_trace.workloads[0]
        assert dual_sparse_ops(w, 0.04) == pytest.approx(2 * dual_sparse_ops(w, 0.02))

    def test_prosparsity_reduces_activation_density(self, vgg_trace):
        """Table V: LoAS + ProSparsity cuts activation density severalfold."""
        bit, pro = activation_density_with_prosparsity(
            vgg_trace, max_tiles=8, rng=np.random.default_rng(0)
        )
        assert pro < bit
        assert bit / pro > 2.0


class TestA100:
    def test_utilization_increases_with_size(self):
        from repro.baselines.gpu import tensor_core_utilization

        assert tensor_core_utilization(256, 768, 3072) > tensor_core_utilization(
            64, 64, 64
        )

    def test_launch_overhead_dominates_small_layers(self):
        rng = np.random.default_rng(2)
        w = GeMMWorkload(
            "tiny", SpikeMatrix(rng.random((16, 16)) < 0.3), 16, time_steps=4
        )
        report = A100Model().simulate(ModelTrace("t", "d", [w]))
        # 1 GeMM + 16 LIF kernel launches at 8us each
        assert report.seconds >= 17 * 8e-6


class TestPaperOrdering:
    def test_table4_speedup_ordering(self, vgg_trace):
        """Eyeriss slowest; Prosperity fastest among ASICs (Table IV)."""
        seconds = {}
        for name in ("eyeriss", "ptb", "sato", "mint", "stellar"):
            seconds[name] = BASELINES[name]().simulate(vgg_trace).seconds
        pro = ProsperitySimulator(
            max_tiles_per_workload=32, rng=np.random.default_rng(0)
        ).simulate(vgg_trace).seconds
        assert seconds["eyeriss"] == max(seconds.values())
        assert pro < min(seconds.values())
        assert seconds["stellar"] < seconds["ptb"]
        assert seconds["mint"] < seconds["ptb"]

    def test_table4_energy_ordering(self, vgg_trace):
        eyeriss = EyerissModel().simulate(vgg_trace)
        pro = ProsperitySimulator(
            max_tiles_per_workload=32, rng=np.random.default_rng(0)
        ).simulate(vgg_trace)
        assert pro.energy_j < eyeriss.energy_j
