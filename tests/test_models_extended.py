"""Extended model-zoo coverage: DVS variants, deep models, invariants."""

import numpy as np
import pytest

from repro.snn.models import build_model
from repro.workloads import get_trace


class TestDVSVariants:
    @pytest.mark.parametrize("name", ["spikformer", "sdt"])
    def test_dvs_uses_eight_steps(self, name):
        trace = get_trace(name, "cifar10dvs", preset="small")
        convs = [w for w in trace.workloads if w.kind == "conv"]
        assert convs and all(w.time_steps == 8 for w in convs)

    def test_dvs_two_polarity_channels(self):
        rng = np.random.default_rng(0)
        model = build_model("spikformer", "cifar10dvs", rng=rng,
                            dim=64, depth=1, heads=2)
        x = model.build_input(rng)
        assert x.shape[1] == 2  # on/off polarities
        assert x.dtype == bool


class TestDeepModels:
    def test_resnet19_has_more_blocks_than_resnet18(self):
        t18 = get_trace("resnet18", "cifar10", preset="small")
        t19 = get_trace("resnet19", "cifar10", preset="small")
        assert len(t19) > len(t18)

    def test_spikebert_depth_scales_workloads(self):
        rng = np.random.default_rng(0)
        shallow = build_model("spikebert", "sst2", rng=rng,
                              dim=96, depth=1, heads=2).trace(np.random.default_rng(1))
        rng = np.random.default_rng(0)
        deep = build_model("spikebert", "sst2", rng=rng,
                           dim=96, depth=3, heads=2).trace(np.random.default_rng(1))
        assert len(deep) == pytest.approx(3 * len(shallow), abs=2)

    def test_alexnet_trace_shapes(self):
        trace = get_trace("alexnet", "cifar10", preset="small")
        # 5 convs + 2 linear layers
        assert len(trace) == 7
        head = trace.workloads[-1]
        assert head.n == 10  # cifar10 classes


class TestTraceInvariants:
    @pytest.mark.parametrize(
        "name,dataset",
        [("vgg9", "cifar10"), ("spikformer", "cifar10"), ("sdt", "cifar10dvs")],
    )
    def test_gemm_dimensions_consistent(self, name, dataset):
        """K of each GeMM equals the producing layer's fan-in."""
        trace = get_trace(name, dataset, preset="small")
        for workload in trace.workloads:
            assert workload.m > 0 and workload.k > 0 and workload.n > 0
            assert workload.spikes.shape == (workload.m, workload.k)

    def test_conv_rows_are_time_by_spatial(self, vgg_trace):
        first = vgg_trace.workloads[0]
        # 4 steps x 32 x 32 positions for the stem conv on CIFAR input.
        assert first.m == 4 * 32 * 32

    def test_attention_workloads_are_square_ish(self, transformer_trace):
        for workload in transformer_trace.workloads:
            if workload.kind != "attention":
                continue
            # kv: (head_dim, L); qkv: (L, head_dim) — both bounded by L=64.
            assert workload.m <= 64 and workload.k <= 64

    def test_densities_strictly_between_zero_and_one(self, transformer_trace):
        for workload in transformer_trace.workloads:
            assert 0.0 <= workload.bit_density < 1.0

    def test_no_empty_workloads(self, vgg_trace, transformer_trace):
        for trace in (vgg_trace, transformer_trace):
            assert all(w.spikes.bits.size > 0 for w in trace.workloads)
