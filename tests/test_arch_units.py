"""Tests for the PPU hardware unit models (TCAM, sorter, pruner, decoder)."""

import numpy as np
import pytest

from repro.arch.decoder import AddressDecoder
from repro.arch.pruner_unit import Pruner
from repro.arch.sorter import BitonicSorter
from repro.arch.tcam import TCAM
from repro.core.forest import NO_PREFIX, build_forest
from repro.core.spike_matrix import SpikeTile
from repro.utils.bitops import pack_rows, popcount_rows


class TestTCAM:
    def test_subset_search_matches_paper_example(self, paper_tile):
        tcam = TCAM(8, 4)
        tcam.load(paper_tile.bits)
        # Query Row 2 (1011) -> mask X0XX. Paper Fig. 5a shows SI bits
        # 1,1,1,1,0,0: entries 0 (1010), 1 (1001), 2 (self), 3 (0010).
        matches = tcam.search_subsets(paper_tile.bits[2])
        assert set(matches.tolist()) == {0, 1, 2, 3}

    def test_search_includes_self(self, random_tile):
        tcam = TCAM(random_tile.m, random_tile.k)
        tcam.load(random_tile.bits)
        for row in (0, random_tile.m - 1):
            assert row in tcam.search_subsets(random_tile.bits[row])

    def test_search_semantics_against_sets(self, random_tile):
        tcam = TCAM(random_tile.m, random_tile.k)
        tcam.load(random_tile.bits)
        sets = [set(np.flatnonzero(r)) for r in random_tile.bits]
        for row in range(0, random_tile.m, 7):
            matches = set(tcam.search_subsets(random_tile.bits[row]).tolist())
            expected = {j for j in range(random_tile.m) if sets[j] <= sets[row]}
            assert matches == expected

    def test_one_cycle_per_query(self):
        tcam = TCAM(16, 8)
        assert tcam.search_cycles(16) == 16

    def test_bit_operations_quadratic(self, paper_tile):
        tcam = TCAM(8, 4)
        tcam.load(paper_tile.bits)
        assert tcam.bit_operations(6) == 6 * 6 * 4

    def test_capacity_check(self):
        tcam = TCAM(4, 4)
        with pytest.raises(ValueError):
            tcam.load(np.zeros((5, 4), dtype=bool))

    def test_unloaded_search_raises(self):
        with pytest.raises(RuntimeError):
            TCAM(4, 4).search_subsets(np.zeros(4, dtype=bool))


class TestBitonicSorter:
    def test_sort_matches_stable_argsort(self, rng):
        sorter = BitonicSorter(64)
        for _ in range(5):
            keys = rng.integers(0, 16, size=rng.integers(2, 64))
            order = sorter.sort(keys)
            expected = np.argsort(keys, kind="stable")
            assert (order == expected).all()

    def test_stability_with_ties(self):
        sorter = BitonicSorter(8)
        keys = np.array([3, 3, 3, 1, 1])
        assert sorter.sort(keys).tolist() == [3, 4, 0, 1, 2]

    def test_stage_count(self):
        sorter = BitonicSorter(256)
        assert sorter.stages(256) == 8 * 9 // 2  # log2(256)=8

    def test_stages_far_below_m(self):
        """The sort must hide inside the m-cycle ProSparsity phase."""
        for m in (64, 256, 1024):
            assert BitonicSorter(m).stages(m) < m

    def test_comparisons_positive(self):
        assert BitonicSorter(16).comparisons(16) > 0


class TestPruner:
    def test_matches_forest_prefixes(self, paper_tile):
        pruner = Pruner(paper_tile.m)
        popcounts = popcount_rows(pack_rows(paper_tile.bits))
        forest = build_forest(paper_tile)
        tcam = TCAM(paper_tile.m, paper_tile.k)
        tcam.load(paper_tile.bits)
        for row in range(paper_tile.m):
            subset_idx = tcam.search_subsets(paper_tile.bits[row])
            out = pruner.prune(row, paper_tile.bits, subset_idx, popcounts)
            assert out.prefix == forest.prefix[row]
            assert (out.pattern == forest.pattern[row]).all()

    def test_comparison_counter_increases(self, paper_tile):
        pruner = Pruner(paper_tile.m)
        popcounts = popcount_rows(pack_rows(paper_tile.bits))
        tcam = TCAM(paper_tile.m, paper_tile.k)
        tcam.load(paper_tile.bits)
        tcam_matches = tcam.search_subsets(paper_tile.bits[2])
        pruner.prune(2, paper_tile.bits, tcam_matches, popcounts)
        assert pruner.comparisons > 0

    def test_no_candidates_full_pattern(self):
        tile = SpikeTile(np.array([[1, 1, 0], [0, 0, 1]], dtype=bool))
        pruner = Pruner(2)
        popcounts = popcount_rows(pack_rows(tile.bits))
        out = pruner.prune(0, tile.bits, np.array([0]), popcounts)
        assert out.prefix == NO_PREFIX
        assert (out.pattern == tile.bits[0]).all()


class TestAddressDecoder:
    def test_addresses_in_bsf_order(self):
        decoder = AddressDecoder(weight_row_bytes=128)
        pattern = np.array([0, 1, 0, 1, 1], dtype=bool)
        assert decoder.decode_row(pattern) == [128, 3 * 128, 4 * 128]

    def test_does_not_mutate_input(self):
        decoder = AddressDecoder(4)
        pattern = np.array([1, 0, 1], dtype=bool)
        decoder.decode_row(pattern)
        assert pattern.tolist() == [1, 0, 1]

    def test_em_row_one_cycle(self):
        decoder = AddressDecoder(4)
        assert decoder.cycles(0) == 1
        assert decoder.cycles(5) == 5
