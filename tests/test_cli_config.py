"""CLI as a thin Session adapter: --config/--set/--version, help goldens."""

from __future__ import annotations

import contextlib
import io
import pathlib

import numpy as np
import pytest

import repro
from repro.api import RunConfig, Session
from repro.api.config import tomllib
from repro.cli import build_config, build_parser, main

HELP_DIR = pathlib.Path(__file__).parent / "data" / "cli_help"

#: golden-file name -> argv producing that help text
HELP_CASES = {
    "root": ["--help"],
    "density": ["density", "--help"],
    "simulate": ["simulate", "--help"],
    "sweep": ["sweep", "--help"],
    "scaling": ["scaling", "--help"],
    "run": ["run", "--help"],
    "batch": ["batch", "--help"],
    "serve": ["serve", "--help"],
    "submit": ["submit", "--help"],
    "stream": ["stream", "--help"],
    "cache": ["cache", "--help"],
    "cache_stats": ["cache", "stats", "--help"],
    "tradeoff": ["tradeoff", "--help"],
    "config": ["config", "--help"],
    "config_dump": ["config", "dump", "--help"],
}


def _capture_exit(argv: list[str]) -> tuple[str, int]:
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
    return buffer.getvalue(), excinfo.value.code or 0


class TestVersion:
    def test_version_flag(self):
        out, code = _capture_exit(["--version"])
        assert code == 0
        assert out.strip() == f"repro {repro.__version__}"

    def test_short_flag(self):
        out, _ = _capture_exit(["-V"])
        assert out.startswith("repro ")

    def test_matches_package_metadata_when_installed(self):
        from importlib import metadata

        try:
            installed = metadata.version("prosperity-repro")
        except metadata.PackageNotFoundError:
            pytest.skip("package not installed (bare checkout)")
        out, _ = _capture_exit(["--version"])
        assert out.strip() == f"repro {installed}"


class TestHelpGoldens:
    """Every subcommand's --help surface is pinned; flag drift must be
    deliberate (regenerate via tests/data/cli_help/README.md)."""

    @pytest.mark.parametrize("name", sorted(HELP_CASES))
    def test_help_matches_golden(self, name, monkeypatch):
        monkeypatch.setenv("COLUMNS", "80")
        out, code = _capture_exit(HELP_CASES[name])
        assert code == 0
        golden = (HELP_DIR / f"{name}.txt").read_text()
        assert out == golden, (
            f"--help drift for {name!r}; if intentional, regenerate "
            "tests/data/cli_help (see its README.md)"
        )


class TestConfigPrecedence:
    def test_flags_override_config_file(self, tmp_path):
        path = RunConfig().with_overrides(
            {"engine.backend": "reference"}
        ).to_file(tmp_path / "run.json")
        cfg = build_config(
            ["run", "--config", str(path), "--backend", "fused"]
        )
        assert cfg.engine.backend == "fused"

    def test_set_overrides_flags(self):
        cfg = build_config(
            ["run", "--backend", "vectorized", "--set", "engine.backend=fused"]
        )
        assert cfg.engine.backend == "fused"

    def test_defaults_without_flags(self):
        cfg = build_config(["run"])
        assert cfg == RunConfig()

    def test_workers_rejected_at_config_time(self):
        with pytest.raises(SystemExit, match="does not accept"):
            build_config(["run", "--backend", "vectorized", "--workers", "2"])

    def test_bad_flag_combo_exits_cleanly(self):
        with pytest.raises(SystemExit, match="repro: error: batch must be >= 1"):
            build_config(["run", "--batch", "0"])

    def test_missing_config_file_exits_cleanly(self):
        with pytest.raises(SystemExit, match="repro: error: --config"):
            build_config(["run", "--config", "does-not-exist.toml"])

    def test_bad_set_value_exits_cleanly(self):
        with pytest.raises(SystemExit, match="repro: error: unknown backend"):
            build_config(["run", "--set", "engine.backend=bogus"])


class TestConfigDump:
    def test_dump_round_trips(self, capsys):
        assert main(["config", "dump", "--set", "workload.model=lenet5"]) == 0
        out = capsys.readouterr().out
        if tomllib is None:
            pytest.skip("no TOML reader on this Python")
        loaded = RunConfig.from_dict(tomllib.loads(out))
        assert loaded.workload.model == "lenet5"
        assert loaded == RunConfig().with_overrides({"workload.model": "lenet5"})

    def test_dump_json(self, capsys):
        import json

        assert main(["config", "dump", "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["engine"]["backend"] == "vectorized"

    def test_dump_then_config_flag(self, capsys, tmp_path):
        """`repro config dump > f.toml; repro run --config f.toml` works."""
        if tomllib is None:
            pytest.skip("no TOML reader on this Python")
        assert main(["config", "dump", "--set", "workload.model=lenet5",
                     "--set", "workload.dataset=mnist"]) == 0
        path = tmp_path / "run.toml"
        path.write_text(capsys.readouterr().out)
        assert main(["run", "--config", str(path)]) == 0
        assert "lenet5/mnist" in capsys.readouterr().out


class TestBatchCommand:
    """`repro batch`: many configs through one shared scheduler/pool."""

    def _write_config(self, tmp_path, name, **overrides):
        cfg = RunConfig().with_overrides({
            "workload.model": "lenet5", "workload.dataset": "mnist",
            "engine.backend": "fused", **overrides,
        })
        return str(cfg.to_file(tmp_path / name))

    def test_batch_runs_all_configs(self, capsys, tmp_path):
        a = self._write_config(tmp_path, "a.json")
        b = self._write_config(tmp_path, "b.json")
        assert main(["batch", "--config", a, "--config", b]) == 0
        out = capsys.readouterr().out
        assert "2 job(s) through one scheduler" in out
        assert out.count("lenet5/mnist") == 2
        assert "2 coalesced across 1 planner batch(es)" in out

    def test_batch_set_applies_to_every_job(self, capsys, tmp_path):
        a = self._write_config(tmp_path, "a.json")
        b = self._write_config(tmp_path, "b.json")
        assert main(["batch", "--config", a, "--config", b,
                     "--set", "engine.backend=vectorized"]) == 0
        out = capsys.readouterr().out
        assert out.count("vectorized") == 2

    def test_batch_records_match_serial_run(self, tmp_path, capsys):
        """Acceptance: the batch path is bit-identical to `repro run`
        on the same config (both print the same tiles table rows)."""
        import numpy as np

        from repro.api import Job, Scheduler, Session

        path = self._write_config(tmp_path, "a.json")
        cfg = RunConfig.from_file(path)
        with Session(cfg) as session:
            serial = session.run().report
        with Scheduler(cfg) as scheduler:
            mine, twin = scheduler.gather([Job(config=cfg), Job(config=cfg)])
        for result in (mine, twin):
            assert result.report.total_tiles == serial.total_tiles
            for run_a, run_b in zip(result.report.runs, serial.runs):
                assert np.array_equal(run_a.records, run_b.records)

    def test_batch_other_kind(self, capsys, tmp_path):
        path = self._write_config(tmp_path, "a.json")
        assert main(["batch", "--config", path, "--kind", "tradeoff"]) == 0
        out = capsys.readouterr().out
        assert "tradeoff" in out

    def test_batch_failed_job_exits_nonzero(self, capsys, tmp_path):
        good = self._write_config(tmp_path, "good.json")
        bad = self._write_config(tmp_path, "bad.json",
                                 **{"workload.model": "no-such-model"})
        assert main(["batch", "--config", good, "--config", bad]) == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.out
        assert "batch job failed" in captured.err

    def test_batch_bad_config_file_exits_cleanly(self):
        with pytest.raises(SystemExit, match="repro: error: --config"):
            main(["batch", "--config", "missing.toml"])

    def test_batch_requires_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["batch"])


class TestConfigFileEquivalence:
    """Acceptance: a config file alone reproduces the flag invocation."""

    FLAGS = ["--model", "lenet5", "--dataset", "mnist",
             "--backend", "fused", "--plan", "trace"]

    def test_run_records_bit_identical(self, tmp_path):
        flag_cfg = build_config(["run", *self.FLAGS])
        path = flag_cfg.to_file(tmp_path / "run.json")
        file_cfg = build_config(["run", "--config", str(path)])
        assert file_cfg == flag_cfg
        with Session(flag_cfg) as a, Session(file_cfg) as b:
            mine, theirs = a.run().report, b.run().report
        assert mine.total_tiles == theirs.total_tiles
        for run_a, run_b in zip(mine.runs, theirs.runs):
            assert run_a.name == run_b.name
            assert np.array_equal(run_a.records, run_b.records)

    @pytest.mark.parametrize("command", ["density", "tradeoff", "scaling"])
    def test_deterministic_commands_print_identically(
        self, command, capsys, tmp_path
    ):
        argv = [command, "--model", "lenet5", "--dataset", "mnist",
                "--max-tiles", "4"] if command != "tradeoff" else [command]
        assert main(argv) == 0
        from_flags = capsys.readouterr().out
        path = build_config(argv).to_file(tmp_path / "cfg.json")
        assert main([command, "--config", str(path)]) == 0
        assert capsys.readouterr().out == from_flags

    def test_cli_run_with_config_file(self, capsys, tmp_path):
        path = build_config(["run", *self.FLAGS]).to_file(tmp_path / "r.json")
        assert main(["run", "--config", str(path)]) == 0
        out = capsys.readouterr().out
        assert "backend=fused" in out
        assert "plan: trace" in out
