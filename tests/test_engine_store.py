"""Crash-safe persistent result store (ISSUE 8).

Contract: publishes are atomic (readers see a whole entry or none, a
SIGKILLed writer leaves a reopenable store), every read is checksummed
and corruption is quarantined — never served, never fatal — the store
is multi-process safe under concurrent read/write/evict load, bounded
by LRU-ish eviction, and degrades to cache-off on IO errors while runs
keep producing bit-identical records through the kernel path.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import struct
import sys
import time

import numpy as np
import pytest

from repro.core.prosparsity import TILE_RECORD_FIELDS
from repro.engine import faults
from repro.engine.pipeline import ForestCache
from repro.engine.store import (
    SCHEMA_VERSION,
    ResultStore,
    default_store_path,
    namespace_tag,
    open_store,
)


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    """Every test starts and ends with no fault plan."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.clear()
    yield
    faults.clear()


def make_key(tag: str, m: int = 256, k: int = 16) -> tuple:
    digest = hashlib.blake2b(tag.encode(), digest_size=16).digest()
    return (m, k, digest)


def make_record(seed: int) -> tuple:
    return tuple(seed * 1000 + i for i in range(len(TILE_RECORD_FIELDS)))


def sync_store(path, **kwargs) -> ResultStore:
    kwargs.setdefault("async_writes", False)
    return ResultStore(path, **kwargs)


class TestBasics:
    def test_round_trip(self, tmp_path):
        with sync_store(tmp_path) as store:
            key, record = make_key("a"), make_record(1)
            assert store.get(key) is None  # miss
            store.put(key, record)
            assert store.get(key) == record
            counters = store.counters()
            assert counters["store_hits"] == 1
            assert counters["store_misses"] == 1

    def test_persists_across_reopen(self, tmp_path):
        key, record = make_key("persist"), make_record(2)
        with sync_store(tmp_path) as store:
            store.put(key, record)
        with sync_store(tmp_path) as store:
            assert store.get(key) == record

    def test_distinct_shapes_never_alias(self, tmp_path):
        digest = hashlib.blake2b(b"same-content", digest_size=16).digest()
        with sync_store(tmp_path) as store:
            store.put((256, 16, digest), make_record(1))
            assert store.get((128, 16, digest)) is None

    def test_namespace_binds_schema(self, tmp_path):
        tag = namespace_tag()
        assert tag.startswith(f"v{SCHEMA_VERSION}-")
        with sync_store(tmp_path) as store:
            store.put(make_key("ns"), make_record(3))
            assert store.directory == tmp_path / tag
        # A different record schema would hash to a sibling directory:
        blob = repr((SCHEMA_VERSION, TILE_RECORD_FIELDS + ("extra",))).encode()
        other = hashlib.blake2b(blob, digest_size=6).hexdigest()
        assert tag != f"v{SCHEMA_VERSION}-{other}"

    def test_default_path_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "elsewhere"))
        assert default_store_path() == str(tmp_path / "elsewhere")

    def test_rejects_bad_construction(self, tmp_path):
        with pytest.raises(ValueError, match="verify policy"):
            ResultStore(tmp_path, verify="paranoid")
        with pytest.raises(ValueError, match="max_bytes"):
            ResultStore(tmp_path, max_bytes=-1)

    def test_clear_and_stats(self, tmp_path):
        with sync_store(tmp_path) as store:
            for i in range(5):
                store.put(make_key(f"c{i}"), make_record(i))
            stats = store.stats()
            assert stats.entries == 5
            assert stats.total_bytes > 0
            assert store.clear() == 5
            assert store.stats().entries == 0
            assert store.get(make_key("c0")) is None  # miss, not error

    def test_async_writer_flush(self, tmp_path):
        with ResultStore(tmp_path, async_writes=True) as store:
            keys = [make_key(f"a{i}") for i in range(32)]
            for i, key in enumerate(keys):
                store.put(key, make_record(i))
            store.flush()
            for i, key in enumerate(keys):
                assert store.get(key) == make_record(i)


class TestCorruption:
    def _entry_file(self, store):
        files = [path for path, _, _ in store._scan_entries()]
        assert files
        return files[0]

    def test_bit_flip_is_quarantined_not_served(self, tmp_path):
        key, record = make_key("corrupt"), make_record(7)
        with sync_store(tmp_path) as store:
            store.put(key, record)
            path = self._entry_file(store)
            blob = bytearray(path.read_bytes())
            blob[len(blob) // 2] ^= 0xFF
            path.write_bytes(bytes(blob))
            assert store.get(key) is None  # never bad bytes
            assert not path.exists()  # moved aside
            assert store.counters()["store_corrupt"] == 1
            assert store.stats().quarantined == 1
            # Rebuilt entry serves again:
            store.put(key, record)
            assert store.get(key) == record

    def test_truncated_entry_is_corrupt(self, tmp_path):
        key = make_key("torn")
        with sync_store(tmp_path) as store:
            store.put(key, make_record(1))
            path = self._entry_file(store)
            path.write_bytes(path.read_bytes()[:10])
            assert store.get(key) is None
            assert store.counters()["store_corrupt"] == 1

    def test_verify_off_still_validates_structure(self, tmp_path):
        key = make_key("loose")
        with sync_store(tmp_path, verify="off") as store:
            store.put(key, make_record(1))
            assert store.get(key) == make_record(1)
            path = self._entry_file(store)
            path.write_bytes(b"garbage")
            assert store.get(key) is None  # header check catches it

    def test_verify_all_quarantines(self, tmp_path):
        with sync_store(tmp_path) as store:
            for i in range(4):
                store.put(make_key(f"v{i}"), make_record(i))
            path = self._entry_file(store)
            blob = bytearray(path.read_bytes())
            blob[-1] ^= 0xFF
            path.write_bytes(bytes(blob))
            checked, corrupt = store.verify_all()
            assert checked == 4
            assert corrupt == 1
            assert store.stats().quarantined == 1
            assert store.verify_all() == (3, 0)  # quarantined stays gone


class TestEviction:
    def test_lru_eviction_bounds_bytes(self, tmp_path):
        entry_size = len(
            struct.pack("<4sqqq", b"PRS1", 0, 0, 0)
        ) + 8 * len(TILE_RECORD_FIELDS) + 16
        budget = entry_size * 6
        with sync_store(tmp_path, max_bytes=budget) as store:
            for i in range(12):
                store.put(make_key(f"e{i}"), make_record(i))
                time.sleep(0.01)  # distinct mtimes for LRU order
            stats = store.stats()
            assert stats.total_bytes <= budget
            assert store.counters()["store_evictions"] > 0
            # The newest entry survives; the oldest went first.
            assert store.get(make_key("e11")) == make_record(11)
            assert store.get(make_key("e0")) is None

    def test_unbounded_when_zero(self, tmp_path):
        with sync_store(tmp_path, max_bytes=0) as store:
            for i in range(20):
                store.put(make_key(f"u{i}"), make_record(i))
            assert store.counters()["store_evictions"] == 0
            assert store.stats().entries == 20


class TestDegradation:
    def test_unwritable_root_disables_not_crashes(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("root ignores directory permissions")
        blocked = tmp_path / "blocked"
        blocked.mkdir()
        blocked.chmod(0o400)
        try:
            store = sync_store(blocked / "store")
            assert store.enabled is False
            assert "open failed" in store.disabled_reason
            store.put(make_key("x"), make_record(1))  # no-ops, no raise
            assert store.get(make_key("x")) is None
        finally:
            blocked.chmod(0o700)

    def test_injected_io_error_on_get_degrades(self, tmp_path):
        key = make_key("io")
        with sync_store(tmp_path) as store:
            store.put(key, make_record(1))
            with faults.injected("store_io_error:match=get"):
                assert store.get(key) is None
            assert store.enabled is False
            assert store.counters()["store_errors"] == 1
            # Degraded store keeps no-opping silently:
            store.put(make_key("y"), make_record(2))
            assert store.get(key) is None

    def test_injected_io_error_on_put_degrades(self, tmp_path):
        with sync_store(tmp_path) as store:
            with faults.injected("store_io_error:match=put"):
                store.put(make_key("p"), make_record(1))
            assert store.enabled is False
            assert not list(store._scan_entries())

    def test_injected_corruption_flips_real_bytes(self, tmp_path):
        key, record = make_key("drill"), make_record(9)
        with sync_store(tmp_path) as store:
            store.put(key, record)
            with faults.injected("store_corrupt:times=1"):
                assert store.get(key) is None  # detected, not served
            assert store.counters()["store_corrupt"] == 1
            assert store.stats().quarantined == 1
            quarantined = list(store.quarantine_dir.iterdir())
            assert len(quarantined) == 1
            # The quarantined file carries genuinely flipped bytes:
            good = store._encode(key, record)
            assert quarantined[0].read_bytes() != good
            # Burned-out fault: the rebuilt entry reads clean.
            store.put(key, record)
            assert store.get(key) == record

    def test_corrupt_spec_skips_non_read_sites(self, tmp_path):
        """Without ``match``, store_corrupt must not burn triggers at
        open/put sites where its verdict would be ignored."""
        with faults.injected("store_corrupt:times=1") as plan:
            with sync_store(tmp_path) as store:
                store.put(make_key("s"), make_record(1))
            assert plan.get("store_corrupt").fired == 0


class TestTmpReclaim:
    def test_dead_writer_tmp_is_reclaimed(self, tmp_path):
        with sync_store(tmp_path) as store:
            store.put(make_key("t"), make_record(1))
            shard = next(iter(store._scan_entries()))[0].parent
        # A pid from a long-dead writer (pid 2^22 is out of range on
        # default Linux pid_max) and one from this very process:
        dead = shard / ".tmp-4194304-1-x.rec"
        ours = shard / f".tmp-{os.getpid()}-9-y.rec"
        dead.write_bytes(b"torn")
        ours.write_bytes(b"torn")
        with sync_store(tmp_path):
            assert not dead.exists()
            assert not ours.exists()

    def test_live_writer_tmp_survives(self, tmp_path):
        with sync_store(tmp_path) as store:
            store.put(make_key("t"), make_record(1))
            shard = next(iter(store._scan_entries()))[0].parent
        live = shard / ".tmp-1-1-z.rec"  # pid 1 is always alive
        live.write_bytes(b"in-flight")
        with sync_store(tmp_path):
            assert live.exists()


class TestTieredForestCache:
    def test_store_hit_backfills_memory(self, tmp_path):
        key, record = make_key("tier"), make_record(4)
        with sync_store(tmp_path) as store:
            store.put(key, record)
            cache = ForestCache(8, store=store)
            assert cache.get_record_by_key(key) == record
            assert cache.misses == 1  # memory missed...
            assert store.counters()["store_hits"] == 1  # ...store served
            assert cache.get_record_by_key(key) == record
            assert cache.hits == 1  # backfilled: now in-memory
            assert store.counters()["store_hits"] == 1  # store untouched

    def test_put_writes_through(self, tmp_path):
        key, record = make_key("through"), make_record(5)
        with sync_store(tmp_path) as store:
            cache = ForestCache(8, store=store)
            cache.put_record_by_key(key, record)
            fresh = ForestCache(8, store=store)
            assert fresh.get_record_by_key(key) == record

    def test_no_store_behaves_as_before(self):
        cache = ForestCache(8)
        key = make_key("plain")
        assert cache.get_record_by_key(key) is None
        cache.put_record_by_key(key, make_record(1))
        assert cache.get_record_by_key(key) == make_record(1)


class TestOpenStore:
    def test_disabled_config_returns_none(self):
        class Cfg:
            enabled = False

        assert open_store(Cfg()) is None

    def test_enabled_config_builds_store(self, tmp_path):
        class Cfg:
            enabled = True
            path = str(tmp_path / "s")
            max_bytes = 1024
            verify = "checksum"

        store = open_store(Cfg())
        try:
            assert store is not None
            assert store.max_bytes == 1024
        finally:
            store.close()


# ---------------------------------------------------------------------------
# Multi-process safety
# ---------------------------------------------------------------------------

HAMMER_KEYS = 24
HAMMER_OPS = 150


def _hammer_worker(path: str, worker: int, failures) -> None:
    """Mixed read/write/evict load; any wrong byte is a failure."""
    store = ResultStore(path, max_bytes=0, async_writes=False)
    rng = np.random.default_rng(worker)
    try:
        for op in range(HAMMER_OPS):
            index = int(rng.integers(HAMMER_KEYS))
            key = make_key(f"h{index}")
            expected = make_record(index)
            if rng.random() < 0.5:
                store.put(key, expected)
            else:
                got = store.get(key)
                if got is not None and got != expected:
                    failures.put(f"worker {worker} op {op}: torn read {got}")
                    return
        checked, corrupt = store.verify_all()
        if corrupt:
            failures.put(f"worker {worker}: {corrupt}/{checked} corrupt")
    finally:
        store.close()


class TestMultiProcess:
    def test_concurrent_hammer_no_torn_reads(self, tmp_path):
        """N processes hammering one store directory: every successful
        read returns the exact record for its key, and a full verify
        afterwards finds zero corruption."""
        ctx = multiprocessing.get_context("spawn")
        failures = ctx.Queue()
        workers = [
            ctx.Process(
                target=_hammer_worker, args=(str(tmp_path), rank, failures)
            )
            for rank in range(4)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        assert failures.empty(), failures.get()
        with sync_store(tmp_path) as store:
            checked, corrupt = store.verify_all()
            assert corrupt == 0
            for index in range(HAMMER_KEYS):
                got = store.get(make_key(f"h{index}"))
                assert got is None or got == make_record(index)

    def test_concurrent_hammer_with_eviction(self, tmp_path):
        """Same hammer under a byte budget: evictions race reads, which
        must surface as plain misses — never torn records."""
        entry_size = struct.calcsize("<4sqqq") + 8 * len(TILE_RECORD_FIELDS) + 16

        def bounded_worker(path, worker, failures):
            store = ResultStore(
                path,
                max_bytes=entry_size * (HAMMER_KEYS // 2),
                async_writes=False,
            )
            rng = np.random.default_rng(100 + worker)
            try:
                for op in range(HAMMER_OPS):
                    index = int(rng.integers(HAMMER_KEYS))
                    key = make_key(f"h{index}")
                    expected = make_record(index)
                    if rng.random() < 0.6:
                        store.put(key, expected)
                    else:
                        got = store.get(key)
                        if got is not None and got != expected:
                            failures.append(f"torn read at op {op}")
                            return
            finally:
                store.close()

        # Threads exercise the same interleavings in-process (spawn
        # can't pickle a closure); the spawn-based hammer above covers
        # the cross-process rename/eviction races.
        import threading

        failures: list[str] = []
        threads = [
            threading.Thread(target=bounded_worker, args=(tmp_path, i, failures))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures
        with sync_store(tmp_path) as store:
            assert store.verify_all()[1] == 0


def _crash_writer(path: str, ready) -> None:
    """Publish entries forever (sync writes) until SIGKILLed."""
    store = ResultStore(path, async_writes=False)
    serial = 0
    while True:
        store.put(make_key(f"crash{serial % 64}"), make_record(serial % 64))
        serial += 1
        if serial == 8:
            ready.set()  # parent may kill us any time from here on


class TestCrashRecovery:
    def test_sigkill_mid_write_reopens_clean(self, tmp_path):
        """A writer killed mid-publish must leave a store that reopens,
        verifies clean, and still serves every published entry."""
        ctx = multiprocessing.get_context("spawn")
        ready = ctx.Event()
        writer = ctx.Process(target=_crash_writer, args=(str(tmp_path), ready))
        writer.start()
        assert ready.wait(timeout=60), "writer never got going"
        os.kill(writer.pid, signal.SIGKILL)
        writer.join(timeout=30)
        assert writer.exitcode == -signal.SIGKILL

        with sync_store(tmp_path) as store:
            assert store.enabled
            checked, corrupt = store.verify_all()
            assert corrupt == 0, "SIGKILL produced a torn published entry"
            assert checked >= 8  # at least the pre-ready publishes landed
            # Published entries serve hits with the exact bytes written:
            hits = 0
            for index in range(64):
                got = store.get(make_key(f"crash{index}"))
                if got is not None:
                    assert got == make_record(index)
                    hits += 1
            assert hits == checked
            # No temp litter survives reopen (the dead pid is reclaimed):
            litter = [
                leftover
                for path, _, _ in store._scan_entries()
                for leftover in path.parent.glob(".tmp-*")
            ]
            assert litter == []


def _late_publisher(path: str) -> None:
    """Publish entries into a store another process already has open."""
    store = ResultStore(path, async_writes=False)
    try:
        store.put(make_key("late-a"), make_record(70))
        store.put(make_key("late-b"), make_record(71))
    finally:
        store.close()


class TestCrossProcessWarmShare:
    """A second opener warm-shares entries published *after* its open:
    the first miss triggers one on-disk index rescan (ISSUE 9)."""

    def test_second_opener_sees_late_publishes(self, tmp_path):
        ctx = multiprocessing.get_context("spawn")
        with sync_store(tmp_path) as reader:
            # The reader opened against an empty directory; only now
            # does a sibling process publish.
            publisher = ctx.Process(target=_late_publisher, args=(str(tmp_path),))
            publisher.start()
            publisher.join(timeout=60)
            assert publisher.exitcode == 0
            # First miss rescans the on-disk index: both late entries
            # warm-share into this process as hits.
            assert reader.get(make_key("late-a")) == make_record(70)
            assert reader.get(make_key("late-b")) == make_record(71)
            counters = reader.counters()
            assert counters["store_hits"] == 2
            assert counters["store_misses"] == 0

    def test_rescan_happens_once_per_open(self, tmp_path):
        ctx = multiprocessing.get_context("spawn")
        with sync_store(tmp_path) as reader:
            # Consume the one rescan on a genuinely absent key.
            assert reader.get(make_key("never")) is None
            publisher = ctx.Process(target=_late_publisher, args=(str(tmp_path),))
            publisher.start()
            publisher.join(timeout=60)
            assert publisher.exitcode == 0
            # Publishes after the rescan stay invisible to this open...
            assert reader.get(make_key("late-a")) is None
        # ...and surface on the next open, without needing a miss first.
        with sync_store(tmp_path) as reopened:
            assert reopened.get(make_key("late-a")) == make_record(70)

    def test_rescan_does_not_mask_own_misses(self, tmp_path):
        with sync_store(tmp_path) as store:
            assert store.get(make_key("absent")) is None
            assert store.counters()["store_misses"] == 1


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-v"]))
