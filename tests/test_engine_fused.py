"""Fused backend: tile-batched kernels must match the reference oracle.

Property-style sweeps pin the fused ``matrix_records`` path — stacked
same-shape tiles, sorted-key triangle scan, content dedup, hoisted
padding — bit-for-bit against the per-tile reference and vectorized
implementations, across densities, correlations, word widths, and ragged
tile shapes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.forest import build_forest
from repro.core.prosparsity import forest_record
from repro.core.spike_matrix import SpikeMatrix, SpikeTile, random_spike_matrix
from repro.engine import ForestCache, FusedBackend, ProsperityEngine, get_backend
from repro.engine.backends import (
    ReferenceBackend,
    available_backends,
    max_chain_depth,
    pack_codes,
    select_prefixes_codes,
)
from repro.engine.fused import (
    PROFILE_STAGES,
    build_tile_groups,
    dedup_tiles,
    max_chain_depth_batch,
    padded_codes,
    records_from_codes_batch,
    select_prefixes_batch,
)
from repro.utils.bitops import popcount_rows

DENSITIES = (0.0, 0.05, 0.2, 0.5, 0.95, 1.0)


def _random_cases(rng):
    """Shapes crossing word widths, ragged edges, and EM-rich inputs."""
    for density in DENSITIES:
        for rows, cols, correlation in (
            (64, 16, 0.0),
            (256, 16, 0.4),
            (100, 30, 0.7),    # ragged tiles in both dimensions
            (48, 130, 0.3),    # beyond one 64-bit word (W > 1)
            (5, 3, 0.0),       # smaller than any tile
        ):
            yield random_spike_matrix(rows, cols, density, rng, correlation)


class TestFusedEquivalence:
    def test_registered(self):
        assert "fused" in available_backends()
        assert isinstance(get_backend("fused"), FusedBackend)

    def test_matrix_records_match_reference(self, rng):
        oracle = ReferenceBackend()
        fused = FusedBackend()
        for matrix in _random_cases(rng):
            for tile_m, tile_k in ((64, 16), (32, 8), (17, 23)):
                expected = oracle.matrix_records(matrix, tile_m, tile_k)
                actual = fused.matrix_records(matrix, tile_m, tile_k)
                assert np.array_equal(expected, actual), (tile_m, tile_k)

    def test_tile_record_matches_forest_record(self, rng):
        fused = FusedBackend()
        for matrix in _random_cases(rng):
            tile = SpikeTile(matrix.bits)
            assert fused.tile_record(tile) == forest_record(build_forest(tile))

    def test_paper_example(self, paper_tile):
        assert FusedBackend().tile_record(paper_tile) == forest_record(
            build_forest(paper_tile)
        )

    def test_duplicate_heavy_matrix(self, rng):
        """Dedup path: many identical tiles, computed once, scattered back."""
        tile_bits = rng.random((32, 16)) < 0.3
        stacked = SpikeMatrix(np.vstack([tile_bits] * 6))
        expected = ReferenceBackend().matrix_records(stacked, 32, 16)
        actual = FusedBackend().matrix_records(stacked, 32, 16)
        assert np.array_equal(expected, actual)
        assert (expected == expected[0]).all()


class TestHoistedPadding:
    @pytest.mark.parametrize(
        "tile_k", [17, 24, 33, 40, 41, 48, 49, 56]
    )  # packed widths 3, 3, 5, 5, 6, 6, 7, 7 bytes
    def test_padded_codes_match_per_tile_pack(self, rng, tile_k):
        """Matrix-level padding must equal per-tile ``pack_codes`` padding."""
        matrix = random_spike_matrix(96, 2 * tile_k + 5, 0.3, rng, 0.4)
        groups, _ = build_tile_groups(matrix, 32, tile_k)
        by_position = {}
        for group in groups:
            for i, position in enumerate(group.positions):
                by_position[int(position)] = group.codes[i]
        for index, tile in enumerate(matrix.tile(32, tile_k)):
            expected = pack_codes(tile.packed)
            actual = by_position[index]
            assert actual.dtype == expected.dtype, tile_k
            assert np.array_equal(actual, expected), (tile_k, index)

    @pytest.mark.parametrize("tile_k", [17, 33, 41, 49, 56])
    def test_records_at_non_power_of_two_widths(self, rng, tile_k):
        matrix = random_spike_matrix(80, 3 * tile_k - 4, 0.25, rng, 0.5)
        expected = ReferenceBackend().matrix_records(matrix, 32, tile_k)
        actual = FusedBackend().matrix_records(matrix, 32, tile_k)
        assert np.array_equal(expected, actual)

    def test_padded_codes_identity_when_power_of_two(self, rng):
        packed = np.packbits(rng.random((10, 32)) < 0.5, axis=1)
        codes = padded_codes(packed)
        assert np.array_equal(codes, pack_codes(packed))


class TestBatchedKernels:
    def test_select_matches_per_tile(self, rng):
        for matrix in _random_cases(rng):
            tile = SpikeTile(matrix.bits)
            codes = pack_codes(tile.packed)
            pops = popcount_rows(tile.packed)
            expected = select_prefixes_codes(codes, pops)
            batched = select_prefixes_batch(codes[None], pops[None])[0]
            assert np.array_equal(expected, batched)

    def test_select_stacked_tiles_independent(self, rng):
        """Each stacked tile's prefixes must ignore the other tiles."""
        tiles = [SpikeTile(rng.random((32, 16)) < d) for d in (0.1, 0.4, 0.8)]
        codes = np.stack([pack_codes(t.packed) for t in tiles])
        pops = np.stack([popcount_rows(t.packed) for t in tiles])
        batched = select_prefixes_batch(codes, pops)
        for i, tile in enumerate(tiles):
            expected = select_prefixes_codes(codes[i], pops[i])
            assert np.array_equal(batched[i], expected), i

    def test_select_large_popcounts_no_overflow(self):
        """Popcounts >= 2**15 must not wrap the packed int64 sort key."""
        bits = np.ones((6, 33000), dtype=bool)
        bits[0, :100] = False  # proper subsets of the full rows
        bits[1, :50] = False
        bits[5, :] = False     # and a zero row
        tile = SpikeTile(bits)
        codes = pack_codes(tile.packed)
        pops = popcount_rows(tile.packed)
        expected = select_prefixes_codes(codes, pops)
        batched = select_prefixes_batch(codes[None], pops[None])[0]
        assert np.array_equal(batched, expected)

    def test_empty_batch(self):
        codes = np.zeros((0, 4, 1), dtype=np.uint8)
        pops = np.zeros((0, 4), dtype=np.int64)
        assert select_prefixes_batch(codes, pops).shape == (0, 4)
        assert max_chain_depth_batch(np.zeros((0, 4), np.int64)).shape == (0,)

    def test_depth_matches_per_tile(self, rng):
        for matrix in _random_cases(rng):
            tile = SpikeTile(matrix.bits)
            forest = build_forest(tile)
            batched = max_chain_depth_batch(forest.prefix[None])[0]
            assert batched == max_chain_depth(forest.prefix)
            assert batched == forest.depth()

    def test_depth_staircase(self):
        """Max-depth chain: prefix[i] = i - 1 for every row."""
        m = 16
        prefix = np.arange(-1, m - 1, dtype=np.int64)
        assert max_chain_depth_batch(prefix[None])[0] == m - 1

    def test_depth_cycle_detected(self):
        prefix = np.array([[1, 0]], dtype=np.int64)
        with pytest.raises(RuntimeError, match="cycle"):
            max_chain_depth_batch(prefix)

    def test_records_batch_matches_reference(self, rng):
        tiles = [SpikeTile(rng.random((48, 24)) < d) for d in (0.1, 0.3, 0.6)]
        codes = np.stack([pack_codes(t.packed) for t in tiles])
        pops = np.stack([popcount_rows(t.packed) for t in tiles])
        records = records_from_codes_batch(codes, pops, 24)
        for i, tile in enumerate(tiles):
            assert tuple(records[i]) == forest_record(build_forest(tile)), i

    def test_dedup_tiles(self, rng):
        raw = (rng.random((6, 12)) < 0.5).astype(np.uint8)
        raw[3] = raw[0]
        raw[5] = raw[0]
        first, inverse = dedup_tiles(raw)
        assert len(first) == 4
        rebuilt = raw[first][inverse]
        assert np.array_equal(rebuilt, raw)


class TestFusedCacheAndProfile:
    def test_repeat_transform_hits_cache(self, rng):
        matrix = random_spike_matrix(128, 32, 0.2, rng, 0.3)
        engine = ProsperityEngine(backend="fused", tile_m=64, tile_k=16)
        first = engine.transform_matrix(matrix)
        misses = engine.cache.misses
        second = engine.transform_matrix(matrix)
        assert np.array_equal(first.tile_records, second.tile_records)
        assert engine.cache.misses == misses
        assert engine.cache.hits >= len(second.tile_records) // 2

    def test_intra_batch_duplicates_miss_once(self, rng):
        """Duplicate tiles inside one batch dedup before cache lookup."""
        tile_bits = rng.random((64, 16)) < 0.3
        stacked = SpikeMatrix(np.vstack([tile_bits] * 4))
        cache = ForestCache(64)
        FusedBackend().matrix_records(stacked, 64, 16, cache=cache)
        assert cache.misses == 1
        assert cache.hits == 0

    def test_cache_prefilled_by_vectorized_path(self, rng):
        """Fused lookups share content keys with the per-tile put path."""
        matrix = random_spike_matrix(64, 32, 0.25, rng, 0.2)
        cache = ForestCache(256)
        expected = get_backend("vectorized").matrix_records(
            matrix, 32, 16, cache=cache
        )
        misses = cache.misses
        actual = FusedBackend().matrix_records(matrix, 32, 16, cache=cache)
        assert np.array_equal(expected, actual)
        assert cache.misses == misses  # every unique tile was a hit

    def test_profile_accumulates_stages(self, rng):
        backend = FusedBackend()
        assert set(backend.profile) == set(PROFILE_STAGES)
        matrix = random_spike_matrix(256, 64, 0.2, rng, 0.3)
        backend.matrix_records(matrix, 64, 16)
        assert backend.profile["pack"] > 0
        assert backend.profile["select"] > 0
        assert backend.profile["record"] > 0

    def test_engine_report_profile(self, rng):
        engine = ProsperityEngine(backend="fused", tile_m=64, tile_k=16)
        from repro.snn.trace import GeMMWorkload

        trace = [
            GeMMWorkload(
                name="w", spikes=random_spike_matrix(128, 32, 0.3, rng), n=8
            )
        ]
        report = engine.run(trace, batch=1)
        assert set(report.profile) >= set(PROFILE_STAGES)
        assert all(seconds >= 0 for seconds in report.profile.values())
        assert report.backend == "fused"

    def test_engine_run_matches_vectorized(self, vgg_trace):
        vec = ProsperityEngine(backend="vectorized", tile_m=256, tile_k=16)
        fused = ProsperityEngine(backend="fused", tile_m=256, tile_k=16)
        vec_report = vec.run(vgg_trace, batch=8)
        fused_report = fused.run(vgg_trace, batch=8)
        assert [r.name for r in vec_report.runs] == [
            r.name for r in fused_report.runs
        ]
        for mine, theirs in zip(fused_report.runs, vec_report.runs):
            assert np.array_equal(mine.records, theirs.records), mine.name
            assert vars(mine.stats) == vars(theirs.stats)

    def test_verify_trace(self, rng):
        from repro.snn.trace import GeMMWorkload

        workloads = [
            GeMMWorkload(
                name="v", spikes=random_spike_matrix(96, 24, 0.25, rng), n=8
            )
        ]
        engine = ProsperityEngine(backend="fused", tile_m=32, tile_k=8)
        assert engine.verify_trace(workloads)
