"""Scheduler tenancy + priority classes (ISSUE 9, [server] section).

Contract: per-tenant queue quotas refuse only the offending tenant
(``SchedulerSaturated`` naming it; other tenants keep submitting),
priority classes drain in weighted-interleave order within each
coalesce window while still draining *everything* per window (the PR 5
no-starvation guarantee), and ``queue_depths()``/``stats`` expose the
per-tenant / per-priority view the network front end serves.
"""

from __future__ import annotations

import pytest

from repro.api import Job, RunConfig, Scheduler, SchedulerSaturated


def tenancy_config(**overrides) -> RunConfig:
    base = {
        "workload.model": "lenet5",
        "workload.dataset": "mnist",
        "sampling.max_tiles": 4,
        "scheduler.coalesce_window_ms": 0.0,
    }
    return RunConfig().with_overrides({**base, **overrides})


class TestQuotaResolution:
    def test_no_quota_by_default(self):
        with Scheduler(tenancy_config()) as scheduler:
            assert scheduler.tenant_quota is None

    def test_absolute_cap(self):
        cfg = tenancy_config(**{"server.tenant_max_inflight": 3})
        with Scheduler(cfg) as scheduler:
            assert scheduler.tenant_quota == 3

    def test_fractional_share_of_max_inflight(self):
        cfg = tenancy_config(**{
            "scheduler.max_inflight": 10,
            "server.tenant_queue_share": 0.5,
        })
        with Scheduler(cfg) as scheduler:
            assert scheduler.tenant_quota == 5

    def test_effective_quota_is_the_tighter_cap(self):
        cfg = tenancy_config(**{
            "scheduler.max_inflight": 10,
            "server.tenant_max_inflight": 2,
            "server.tenant_queue_share": 0.5,
        })
        with Scheduler(cfg) as scheduler:
            assert scheduler.tenant_quota == 2

    def test_share_never_rounds_to_zero(self):
        cfg = tenancy_config(**{
            "scheduler.max_inflight": 4,
            "server.tenant_queue_share": 0.1,
        })
        with Scheduler(cfg) as scheduler:
            assert scheduler.tenant_quota == 1


class TestTenantResolution:
    def test_default_tenant_and_priority_applied(self):
        with Scheduler(tenancy_config()) as scheduler:
            handle = scheduler.submit(Job(kind="tradeoff"))
            assert handle.tenant == "anonymous"
            assert handle.priority == "interactive"
            handle.result()

    def test_unknown_tenant_rejected_when_tenancy_closed(self):
        cfg = tenancy_config(**{
            "server.tenants": ["acme", "globex", "anonymous"],
        })
        with Scheduler(cfg) as scheduler:
            with pytest.raises(ValueError, match="unknown tenant 'initech'"):
                scheduler.submit(Job(kind="tradeoff", tenant="initech"))
            scheduler.submit(Job(kind="tradeoff", tenant="acme")).result()

    def test_open_tenancy_accepts_any_name(self):
        with Scheduler(tenancy_config()) as scheduler:
            handle = scheduler.submit(Job(kind="tradeoff", tenant="whoever"))
            assert handle.tenant == "whoever"
            handle.result()

    def test_unknown_priority_rejected(self):
        with Scheduler(tenancy_config()) as scheduler:
            with pytest.raises(ValueError, match="unknown priority 'urgent'"):
                scheduler.submit(Job(kind="tradeoff", priority="urgent"))

    def test_stats_count_by_tenant_and_priority(self):
        with Scheduler(tenancy_config()) as scheduler:
            scheduler.gather([
                Job(kind="tradeoff", tenant="acme", priority="interactive"),
                Job(kind="tradeoff", tenant="acme", priority="batch"),
                Job(kind="tradeoff", tenant="globex"),
            ])
            stats = scheduler.stats
            assert stats["jobs_by_tenant"] == {"acme": 2, "globex": 1}
            assert stats["jobs_by_priority"] == {"interactive": 2, "batch": 1}


class TestQuotaEnforcement:
    """Quota exhaustion is tenant-scoped: only the offender is refused."""

    def window_config(self, **overrides) -> RunConfig:
        # A long window keeps submissions queued (undispatched) while
        # the test probes admission; Scheduler.close() interrupts the
        # window and drains, so teardown stays fast.
        return tenancy_config(**{
            "scheduler.coalesce_window_ms": 5000.0,
            **overrides,
        })

    def test_offending_tenant_refused_others_unaffected(self):
        cfg = self.window_config(**{"server.tenant_max_inflight": 2})
        with Scheduler(cfg) as scheduler:
            first = [
                scheduler.submit(Job(kind="tradeoff", tenant="acme"))
                for _ in range(2)
            ]
            with pytest.raises(SchedulerSaturated, match="tenant 'acme'"):
                scheduler.submit(Job(kind="tradeoff", tenant="acme"),
                                 timeout=0.05)
            # The same instant, another tenant still gets in.
            other = scheduler.submit(Job(kind="tradeoff", tenant="globex"),
                                     timeout=0.05)
            assert scheduler.jobs_shed == 1
            for handle in [*first, other]:
                handle.result(timeout=30)

    def test_quota_message_names_tenant_and_quota(self):
        cfg = self.window_config(**{"server.tenant_max_inflight": 1})
        with Scheduler(cfg) as scheduler:
            scheduler.submit(Job(kind="tradeoff", tenant="acme"))
            with pytest.raises(
                SchedulerSaturated,
                match="tenant 'acme' stayed at its queue quota \\(1 job",
            ):
                scheduler.submit(Job(kind="tradeoff", tenant="acme"),
                                 timeout=0.05)

    def test_oversized_batch_escape_hatch(self):
        # A tenant with nothing queued always fits — one submit_many
        # larger than the quota still runs (mirror of the global bound).
        cfg = self.window_config(**{"server.tenant_max_inflight": 2})
        with Scheduler(cfg) as scheduler:
            handles = scheduler.submit_many(
                [Job(kind="tradeoff", tenant="acme") for _ in range(4)]
            )
            for handle in handles:
                handle.result(timeout=30)

    def test_queue_depths_by_tenant_and_priority(self):
        cfg = self.window_config()
        with Scheduler(cfg) as scheduler:
            scheduler.submit(Job(kind="tradeoff", tenant="acme"))
            scheduler.submit(
                Job(kind="tradeoff", tenant="globex", priority="batch")
            )
            depths = scheduler.queue_depths()
            assert depths["queued"] == 2
            assert depths["by_tenant"] == {"acme": 1, "globex": 1}
            assert depths["by_priority"] == {"interactive": 1, "batch": 1}


class TestWeightedDrain:
    """Weights decide *order* within a drained window, never starvation."""

    def test_weighted_interleave_order(self):
        cfg = tenancy_config(**{
            # The window holds the drain long enough for the test to
            # attach its done-callbacks while every job is still queued.
            "scheduler.coalesce_window_ms": 500.0,
            "server.priorities": ["interactive", "batch"],
            "server.priority_weights": [2, 1],
        })
        order: list[str] = []
        with Scheduler(cfg) as scheduler:
            jobs = (
                [Job(kind="tradeoff", priority="batch", label=f"b{i}")
                 for i in range(6)]
                + [Job(kind="tradeoff", priority="interactive", label=f"i{i}")
                   for i in range(6)]
            )
            # submit_many queues everything under one lock, so the
            # dispatcher's next drain sees the whole window at once; the
            # single dispatcher thread then resolves futures in dispatch
            # order, which the done-callbacks record.
            handles = scheduler.submit_many(jobs)
            for handle in handles:
                handle.future.add_done_callback(
                    lambda _, label=handle.job.label: order.append(label)
                )
            for handle in handles:
                handle.result(timeout=60)
        assert order == [
            "i0", "i1", "b0", "i2", "i3", "b1", "i4", "i5",
            "b2", "b3", "b4", "b5",
        ]

    def test_every_class_drains_within_one_window(self):
        # A flood of high-priority work cannot starve the lower class:
        # the batch job completes in the same drain as the flood.
        cfg = tenancy_config(**{
            "server.priority_weights": [8, 1],
        })
        with Scheduler(cfg) as scheduler:
            flood = [Job(kind="tradeoff", priority="interactive")
                     for _ in range(8)]
            straggler = Job(kind="tradeoff", priority="batch")
            handles = scheduler.submit_many([*flood, straggler])
            for handle in handles:
                handle.result(timeout=60)
            assert scheduler.jobs_submitted == 9

    def test_single_class_keeps_fifo(self):
        order: list[str] = []
        cfg = tenancy_config(**{"scheduler.coalesce_window_ms": 500.0})
        with Scheduler(cfg) as scheduler:
            handles = scheduler.submit_many(
                [Job(kind="tradeoff", label=f"j{i}") for i in range(4)]
            )
            for handle in handles:
                handle.future.add_done_callback(
                    lambda _, label=handle.job.label: order.append(label)
                )
            for handle in handles:
                handle.result(timeout=60)
        assert order == ["j0", "j1", "j2", "j3"]
