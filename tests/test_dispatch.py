"""Tests for the temporal-ordering Dispatcher logic."""

import numpy as np

from repro.core.dispatch import (
    build_dispatch_plan,
    stable_popcount_order,
    tree_walk_order,
)
from repro.core.forest import NO_PREFIX, build_forest
from repro.core.reference import reference_execution_order
from repro.core.spike_matrix import SpikeTile


class TestStablePopcountOrder:
    def test_matches_reference(self, paper_tile):
        order = stable_popcount_order(paper_tile.popcounts())
        ref = reference_execution_order(paper_tile.bits)
        assert (order == ref).all()

    def test_paper_order(self, paper_tile):
        # popcounts [2,2,3,1,3,3] -> 3 first, then 0,1, then 2,4,5.
        order = stable_popcount_order(paper_tile.popcounts())
        assert order.tolist() == [3, 0, 1, 2, 4, 5]

    def test_stability_preserves_index_order(self):
        order = stable_popcount_order(np.array([2, 2, 2, 2]))
        assert order.tolist() == [0, 1, 2, 3]


class TestDispatchPlan:
    def test_topological_validity(self, paper_tile, random_tile):
        for tile in (paper_tile, random_tile):
            forest = build_forest(tile)
            plan = build_dispatch_plan(forest)
            assert plan.verify_topological(forest)

    def test_plan_covers_every_row_once(self, random_tile):
        forest = build_forest(random_tile)
        plan = build_dispatch_plan(forest)
        assert sorted(task.row for task in plan.tasks) == list(range(random_tile.m))

    def test_em_task_flag(self, paper_tile):
        forest = build_forest(paper_tile)
        plan = build_dispatch_plan(forest)
        em_rows = {task.row for task in plan.tasks if task.is_exact_match}
        assert em_rows == {5}

    def test_task_pattern_nnz_matches_forest(self, random_tile):
        forest = build_forest(random_tile)
        plan = build_dispatch_plan(forest)
        residual = forest.residual_ops()
        for task in plan.tasks:
            assert task.pattern_nnz == residual[task.row]

    def test_prefix_before_suffix_many_random(self, rng):
        for _ in range(10):
            tile = SpikeTile(rng.random((48, 12)) < rng.uniform(0.1, 0.5))
            forest = build_forest(tile)
            plan = build_dispatch_plan(forest)
            assert plan.verify_topological(forest)


class TestTreeWalkOrder:
    def test_visits_every_row(self, random_tile):
        forest = build_forest(random_tile)
        order = tree_walk_order(forest)
        assert sorted(order.tolist()) == list(range(random_tile.m))

    def test_also_topological(self, random_tile):
        forest = build_forest(random_tile)
        order = tree_walk_order(forest)
        position = np.empty(len(order), dtype=np.int64)
        position[order] = np.arange(len(order))
        for row in range(forest.m):
            pre = int(forest.prefix[row])
            if pre != NO_PREFIX:
                assert position[pre] < position[row]

    def test_equivalent_results_to_stable_sort_schedule(self, paper_tile):
        """Both dispatch strategies must yield valid (if different) orders."""
        forest = build_forest(paper_tile)
        fast = build_dispatch_plan(forest)
        slow = tree_walk_order(forest)
        assert sorted(slow.tolist()) == sorted(fast.order.tolist())
