"""Tests for workload recording and ModelTrace."""

import numpy as np
import pytest

from repro.snn.trace import (
    GeMMWorkload,
    ModelTrace,
    WorkloadRecorder,
    active_recorder,
    record_gemm,
    recording,
)
from repro.core.spike_matrix import SpikeMatrix


def _workload(kind="linear", m=8, k=4, n=3, density=0.5, seed=0):
    rng = np.random.default_rng(seed)
    return GeMMWorkload(
        name="w", spikes=SpikeMatrix(rng.random((m, k)) < density), n=n, kind=kind
    )


class TestGeMMWorkload:
    def test_derived_metrics(self):
        w = _workload(m=8, k=4, n=3)
        assert w.dense_macs == 96
        assert w.spike_accumulations == w.spikes.nnz * 3
        assert 0 <= w.bit_density <= 1


class TestModelTrace:
    def test_totals(self):
        trace = ModelTrace("m", "d", [_workload(seed=1), _workload(seed=2)])
        assert trace.total_dense_macs == 192
        assert trace.total_elements == 64
        assert len(trace) == 2

    def test_linear_only_drops_attention(self):
        trace = ModelTrace(
            "m", "d", [_workload(kind="linear"), _workload(kind="attention")]
        )
        filtered = trace.linear_only()
        assert len(filtered) == 1
        assert filtered.workloads[0].kind == "linear"

    def test_bit_density_weighted(self):
        dense = _workload(density=1.0, seed=3)
        empty = _workload(density=0.0, seed=4)
        trace = ModelTrace("m", "d", [dense, empty])
        assert trace.bit_density == pytest.approx(0.5)


class TestRecorder:
    def test_no_active_recorder_noop(self):
        record_gemm("x", np.zeros((2, 2), dtype=bool), 4)  # must not raise
        assert active_recorder() is None

    def test_recording_context(self):
        recorder = WorkloadRecorder()
        with recording(recorder):
            assert active_recorder() is recorder
            record_gemm("x", np.ones((2, 3), dtype=bool), 4, kind="conv", time_steps=2)
        assert active_recorder() is None
        assert len(recorder.workloads) == 1
        assert recorder.workloads[0].time_steps == 2

    def test_nested_recorders(self):
        outer, inner = WorkloadRecorder(), WorkloadRecorder()
        with recording(outer):
            with recording(inner):
                record_gemm("x", np.ones((1, 1), dtype=bool), 1)
            record_gemm("y", np.ones((1, 1), dtype=bool), 1)
        assert [w.name for w in inner.workloads] == ["x"]
        assert [w.name for w in outer.workloads] == ["y"]
