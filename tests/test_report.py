"""Tests for SimReport / LayerResult containers and derived metrics."""

import pytest

from repro.arch.report import (
    LayerResult,
    SimReport,
    energy_efficiency_gain,
    geometric_mean,
    speedup,
)


def _layer(name="l", cycles=1000.0, macs=10_000, energy=None):
    return LayerResult(
        name=name,
        cycles=cycles,
        dense_macs=macs,
        energy_pj=energy if energy is not None else {"compute": 500.0, "dram": 500.0},
    )


def _report(layers, freq=500e6):
    report = SimReport(
        accelerator="x", model="m", dataset="d", frequency_hz=freq
    )
    report.layers.extend(layers)
    return report


class TestLayerResult:
    def test_total_energy(self):
        layer = _layer(energy={"a": 1.0, "b": 2.0})
        assert layer.total_energy_pj == 3.0

    def test_defaults(self):
        layer = LayerResult(name="x", cycles=10)
        assert layer.total_energy_pj == 0.0
        assert layer.dense_macs == 0


class TestSimReport:
    def test_cycles_and_seconds(self):
        report = _report([_layer(cycles=250e6), _layer(cycles=250e6)])
        assert report.cycles == 500e6
        assert report.seconds == pytest.approx(1.0)

    def test_energy_conversions(self):
        report = _report([_layer(energy={"a": 1e12})])  # 1 J
        assert report.energy_j == pytest.approx(1.0)
        assert report.avg_power_w == pytest.approx(1.0 / report.seconds)

    def test_breakdown_merges_layers(self):
        report = _report(
            [_layer(energy={"a": 1.0, "b": 2.0}), _layer(energy={"a": 3.0})]
        )
        assert report.energy_breakdown_pj == {"a": 4.0, "b": 2.0}

    def test_throughput_definition(self):
        # 1e6 MACs in 1 ms -> 2e9 OPS -> 2 GOP/s at op_per_mac=2.
        report = _report([_layer(cycles=500e3, macs=1_000_000)])
        assert report.throughput_gops() == pytest.approx(2.0)
        assert report.throughput_gops(op_per_mac=1) == pytest.approx(1.0)

    def test_energy_efficiency_definition(self):
        report = _report([_layer(macs=1_000_000, energy={"e": 1e12})])  # 1 J
        assert report.energy_efficiency_gops_per_j() == pytest.approx(2e-3)

    def test_empty_report_safe(self):
        report = _report([])
        assert report.seconds == 0
        assert report.throughput_gops() == 0.0
        assert report.energy_efficiency_gops_per_j() == 0.0
        assert report.avg_power_w == 0.0


class TestComparisons:
    def test_speedup(self):
        slow = _report([_layer(cycles=1000)])
        fast = _report([_layer(cycles=100)])
        assert speedup(slow, fast) == pytest.approx(10.0)

    def test_energy_gain(self):
        costly = _report([_layer(energy={"e": 100.0})])
        frugal = _report([_layer(energy={"e": 10.0})])
        assert energy_efficiency_gain(costly, frugal) == pytest.approx(10.0)

    def test_geomean_ignores_nonpositive(self):
        assert geometric_mean([1.0, 4.0, 0.0, -2.0]) == pytest.approx(2.0)
