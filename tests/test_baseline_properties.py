"""Property-based tests for the baseline sparsity computations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ptb import windowed_density
from repro.baselines.stellar import FS_MAX_SPIKES, FS_WINDOW_BITS, fs_density
from repro.core.spike_matrix import SpikeMatrix
from repro.snn.trace import GeMMWorkload


def _workload_from(bits: np.ndarray, time_steps: int) -> GeMMWorkload:
    return GeMMWorkload(
        name="w", spikes=SpikeMatrix(bits), n=4, time_steps=time_steps
    )


def _brute_force_windowed(bits: np.ndarray, t: int, window: int) -> float:
    """Obvious per-site loop implementation of PTB's window density."""
    positions = bits.shape[0] // t
    per_step = bits.reshape(t, positions, bits.shape[1])
    window = min(window, t)
    usable = (t // window) * window
    processed = 0
    for start in range(0, usable, window):
        for p in range(positions):
            for col in range(bits.shape[1]):
                if per_step[start : start + window, p, col].any():
                    processed += window
    processed += per_step[usable:].size
    return processed / bits.size


@given(
    st.integers(1, 6),   # positions
    st.integers(1, 10),  # columns
    st.integers(2, 8),   # time steps
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_windowed_density_matches_brute_force(positions, cols, t, seed):
    rng = np.random.default_rng(seed)
    bits = rng.random((t * positions, cols)) < 0.3
    workload = _workload_from(bits, t)
    fast = windowed_density(workload, window=4)
    slow = _brute_force_windowed(bits, t, window=4)
    assert fast == slow


@given(
    st.integers(1, 8),
    st.integers(1, 16),
    st.integers(2, 8),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_windowed_density_bounds(positions, cols, t, seed):
    rng = np.random.default_rng(seed)
    bits = rng.random((t * positions, cols)) < rng.uniform(0.05, 0.6)
    workload = _workload_from(bits, t)
    density = windowed_density(workload, window=4)
    # Window processing covers at least every spike, at most everything.
    assert workload.bit_density <= density <= 1.0


@given(
    st.integers(1, 8),
    st.integers(1, 16),
    st.integers(2, 8),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_fs_density_bounds(positions, cols, t, seed):
    rng = np.random.default_rng(seed)
    bits = rng.random((t * positions, cols)) < rng.uniform(0.05, 0.6)
    workload = _workload_from(bits, t)
    density = fs_density(workload)
    assert 0.0 <= density <= FS_MAX_SPIKES / FS_WINDOW_BITS + 1e-12


def test_fs_density_zero_for_silent_input():
    bits = np.zeros((8, 4), dtype=bool)
    assert fs_density(_workload_from(bits, 4)) == 0.0


def test_fs_density_saturated_input():
    """All-ones activity: every neuron transmits the spike cap."""
    bits = np.ones((8, 4), dtype=bool)
    density = fs_density(_workload_from(bits, 4))
    assert density == FS_MAX_SPIKES / FS_WINDOW_BITS


def test_windowed_density_window_one_equals_bit_density():
    rng = np.random.default_rng(0)
    bits = rng.random((16, 8)) < 0.3
    workload = _workload_from(bits, 4)
    assert windowed_density(workload, window=1) == workload.bit_density
