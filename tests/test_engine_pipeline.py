"""Engine pipeline: forest cache, batching, and simulator integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.prosparsity import transform_matrix
from repro.core.spike_matrix import SpikeMatrix, SpikeTile, random_spike_matrix
from repro.engine import (
    ForestCache,
    ProsperityEngine,
    stats_from_records,
)
from repro.snn.trace import GeMMWorkload


def _workload(name, bits, n=8, kind="linear"):
    return GeMMWorkload(name=name, spikes=SpikeMatrix(bits), n=n, kind=kind)


class TestForestCache:
    def test_record_round_trip(self, rng):
        cache = ForestCache(capacity=4)
        tile = SpikeTile(rng.random((16, 8)) < 0.5)
        assert cache.get_record(tile.m, tile.k, tile.packed) is None
        cache.put_record(tile.m, tile.k, tile.packed, (1, 2, 3))
        assert cache.get_record(tile.m, tile.k, tile.packed) == (1, 2, 3)
        assert cache.hits == 1 and cache.misses == 1

    def test_content_addressing_ignores_coordinates(self, rng):
        """Same bits at different tile coordinates share one entry."""
        cache = ForestCache(capacity=4)
        bits = rng.random((16, 8)) < 0.5
        first = SpikeTile(bits)
        from repro.core.spike_matrix import TileCoord

        second = SpikeTile(bits, TileCoord(640, 32))
        cache.put_record(first.m, first.k, first.packed, (7,))
        assert cache.get_record(second.m, second.k, second.packed) == (7,)

    def test_lru_eviction(self, rng):
        cache = ForestCache(capacity=2)
        tiles = [SpikeTile(rng.random((8, 8)) < 0.5) for _ in range(3)]
        for i, tile in enumerate(tiles):
            cache.put_record(tile.m, tile.k, tile.packed, (i,))
        assert len(cache) == 2
        # Oldest entry evicted, newest two retained.
        assert cache.get_record(tiles[0].m, tiles[0].k, tiles[0].packed) is None
        assert cache.get_record(tiles[2].m, tiles[2].k, tiles[2].packed) == (2,)

    def test_forest_rebinds_to_new_tile(self, rng):
        engine = ProsperityEngine(backend="vectorized", tile_m=16, tile_k=8)
        bits = rng.random((16, 8)) < 0.4
        tile_a = SpikeTile(bits)
        forest_a = engine._forest_for(tile_a)
        from repro.core.spike_matrix import TileCoord

        tile_b = SpikeTile(bits, TileCoord(160, 8))
        forest_b = engine._forest_for(tile_b)
        assert forest_b.tile is tile_b
        assert np.array_equal(forest_a.prefix, forest_b.prefix)
        assert engine.cache.hits >= 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            ForestCache(capacity=0)

    def test_eviction_under_capacity_pressure(self, rng):
        """Sustained over-capacity fills keep the LRU bounded and coherent."""
        cache = ForestCache(capacity=3)
        tiles = [SpikeTile(rng.random((8, 8)) < 0.5) for _ in range(10)]
        for i, tile in enumerate(tiles):
            cache.put_record(tile.m, tile.k, tile.packed, (i,))
            assert len(cache) <= 3
        # Only the newest three contents survive, in insertion order.
        for i, tile in enumerate(tiles):
            record = cache.get_record(tile.m, tile.k, tile.packed)
            assert record == ((i,) if i >= 7 else None), i
        # A get refreshes recency: 7 survives the next two fills, 8 dies.
        cache.get_record(tiles[7].m, tiles[7].k, tiles[7].packed)
        for i in (0, 1):
            cache.put_record(tiles[i].m, tiles[i].k, tiles[i].packed, (100 + i,))
        assert cache.get_record(tiles[7].m, tiles[7].k, tiles[7].packed) == (7,)
        assert cache.get_record(tiles[8].m, tiles[8].k, tiles[8].packed) is None

    def test_eviction_drops_both_slots(self, rng):
        """Evicting an entry loses its record and its forest together."""
        engine = ProsperityEngine(backend="vectorized", tile_m=8, tile_k=8,
                                  cache_size=1)
        tile_a = SpikeTile(rng.random((8, 8)) < 0.5)
        tile_b = SpikeTile(rng.random((8, 8)) < 0.5)
        engine._forest_for(tile_a)
        engine.cache.put_record(tile_a.m, tile_a.k, tile_a.packed, (1,))
        engine._forest_for(tile_b)  # evicts tile_a's entry entirely
        assert engine.cache.get_record(tile_a.m, tile_a.k, tile_a.packed) is None
        assert engine.cache.get_forest(tile_a) is None

    def test_dual_slot_fill_shares_one_entry(self, rng):
        """Record and forest slots for one content key share an entry."""
        cache = ForestCache(capacity=4)
        engine = ProsperityEngine(backend="vectorized", tile_m=16, tile_k=8,
                                  cache_size=0)
        tile = SpikeTile(rng.random((16, 8)) < 0.4)
        forest = engine.backend.forest(tile)

        # Fill the record slot first: the forest slot still misses.
        cache.put_record(tile.m, tile.k, tile.packed, (1, 2))
        assert len(cache) == 1
        assert cache.get_forest(tile) is None
        assert (cache.hits, cache.misses) == (0, 1)

        # Fill the forest slot from the other path: same entry, no growth.
        cache.put_forest(tile, forest)
        assert len(cache) == 1
        assert cache.get_record(tile.m, tile.k, tile.packed) == (1, 2)
        assert cache.get_forest(tile) is not None
        assert (cache.hits, cache.misses) == (2, 1)

    def test_key_based_access_matches_packed_access(self, rng):
        """get/put_record_by_key are aliases for the packed-array API."""
        cache = ForestCache(capacity=4)
        tile = SpikeTile(rng.random((16, 8)) < 0.4)
        key = cache.key(tile.m, tile.k, tile.packed)
        assert cache.get_record_by_key(key) is None
        cache.put_record_by_key(key, (9, 9))
        assert cache.get_record(tile.m, tile.k, tile.packed) == (9, 9)
        assert (cache.hits, cache.misses) == (1, 1)


class TestEngineTransform:
    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_matches_core_transform(self, backend, rng):
        matrix = random_spike_matrix(200, 50, 0.2, rng, 0.4)
        engine = ProsperityEngine(backend=backend, tile_m=64, tile_k=16)
        core = transform_matrix(matrix, 64, 16, keep_transforms=False)
        mine = engine.transform_matrix(matrix)
        assert np.array_equal(core.tile_records, mine.tile_records)
        assert vars(core.stats) == vars(mine.stats)

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_sampled_matches_core(self, backend, rng):
        matrix = random_spike_matrix(400, 60, 0.15, rng, 0.3)
        engine = ProsperityEngine(backend=backend, tile_m=64, tile_k=16)
        core = transform_matrix(
            matrix, 64, 16, keep_transforms=False, max_tiles=6,
            rng=np.random.default_rng(9),
        )
        mine = engine.transform_matrix(
            matrix, max_tiles=6, rng=np.random.default_rng(9)
        )
        assert np.array_equal(core.tile_records, mine.tile_records)
        assert core.stats.sample_fraction == pytest.approx(
            mine.stats.sample_fraction
        )

    def test_keep_transforms_builds_plans(self, rng):
        matrix = random_spike_matrix(100, 20, 0.3, rng, 0.2)
        engine = ProsperityEngine(backend="vectorized", tile_m=32, tile_k=8)
        result = engine.transform_matrix(matrix, keep_transforms=True)
        core = transform_matrix(matrix, 32, 8, keep_transforms=True)
        assert len(result.transforms) == len(core.transforms)
        for mine, ref in zip(result.transforms, core.transforms):
            assert np.array_equal(mine.forest.prefix, ref.forest.prefix)
            assert mine.plan.verify_topological(mine.forest)

    def test_cache_accelerates_repeat_transform(self, rng):
        matrix = random_spike_matrix(128, 32, 0.2, rng, 0.3)
        engine = ProsperityEngine(backend="vectorized", tile_m=64, tile_k=16)
        first = engine.transform_matrix(matrix)
        misses_after_first = engine.cache.misses
        second = engine.transform_matrix(matrix)
        assert np.array_equal(first.tile_records, second.tile_records)
        # Second pass is all hits: no new misses.
        assert engine.cache.misses == misses_after_first
        assert engine.cache.hits >= len(second.tile_records)

    def test_stats_from_records_matches_merge(self, rng):
        matrix = random_spike_matrix(200, 40, 0.25, rng, 0.4)
        core = transform_matrix(matrix, 64, 16, keep_transforms=False)
        rebuilt = stats_from_records(core.tile_records)
        assert vars(rebuilt) == vars(core.stats)

    def test_invalid_tile_shapes_rejected(self, rng):
        with pytest.raises(ValueError, match="tile_m"):
            ProsperityEngine(tile_m=0, tile_k=16)
        engine = ProsperityEngine()
        matrix = random_spike_matrix(32, 16, 0.3, rng)
        for bad_m, bad_k in ((0, 16), (-4, 16), (16, 0), (16, -1)):
            with pytest.raises(ValueError, match="positive integer"):
                engine.transform_matrix(matrix, tile_m=bad_m, tile_k=bad_k)


class TestBatchedRun:
    def test_batching_preserves_records(self, rng):
        """Stacked batches must equal workload-at-a-time processing."""
        workloads = [
            _workload("a", rng.random((128, 32)) < 0.2),
            _workload("b", rng.random((128, 32)) < 0.3),
            _workload("c", rng.random((96, 32)) < 0.25),   # unaligned rows
            _workload("d", rng.random((128, 16)) < 0.2),   # different K
            _workload("e", rng.random((128, 16)) < 0.4),
        ]
        engine_m = 64
        baseline = [
            transform_matrix(w.spikes, engine_m, 16, keep_transforms=False)
            for w in workloads
        ]
        for batch in (1, 2, 8):
            engine = ProsperityEngine(
                backend="vectorized", tile_m=engine_m, tile_k=16
            )
            report = engine.run(workloads, batch=batch)
            assert [r.name for r in report.runs] == list("abcde")
            for run, ref in zip(report.runs, baseline):
                assert np.array_equal(run.records, ref.tile_records), (
                    run.name,
                    batch,
                )
                assert vars(run.stats) == vars(ref.stats)

    def test_batch_groups_respect_alignment(self, rng):
        engine = ProsperityEngine(tile_m=64, tile_k=16)
        aligned = _workload("a", rng.random((128, 32)) < 0.2)
        ragged = _workload("r", rng.random((96, 32)) < 0.2)
        groups = engine._batch_groups([aligned, aligned, ragged, aligned], 8)
        # The ragged workload may end a group but never precede one.
        assert [len(g) for g in groups] == [3, 1]

    def test_run_report_totals(self, rng):
        trace_workloads = [
            _workload("x", rng.random((64, 16)) < 0.3),
            _workload("y", rng.random((64, 16)) < 0.3),
        ]
        engine = ProsperityEngine(backend="vectorized", tile_m=64, tile_k=16)
        report = engine.run(trace_workloads, batch=4)
        assert report.total_tiles == sum(r.tiles for r in report.runs)
        assert report.tiles_per_sec > 0
        assert report.cache_hits + report.cache_misses > 0
        assert report.backend == "vectorized"

    def test_identical_timestep_tiles_hit_cache(self, rng):
        """Repeated spike tiles across timesteps must be cache hits."""
        bits = rng.random((64, 16)) < 0.3
        repeated = np.vstack([bits, bits, bits, bits])  # 4 "timesteps"
        engine = ProsperityEngine(backend="vectorized", tile_m=64, tile_k=16)
        engine.run([_workload("t", repeated)], batch=1)
        assert engine.cache.hits >= 3
        assert engine.cache.misses <= 1

    def test_invalid_batch_rejected(self, rng):
        engine = ProsperityEngine()
        with pytest.raises(ValueError, match="batch"):
            engine.run([_workload("a", rng.random((8, 8)) < 0.5)], batch=0)

    def test_verify_trace_passes_for_vectorized(self, rng):
        workloads = [_workload("v", rng.random((96, 24)) < 0.25)]
        engine = ProsperityEngine(backend="vectorized", tile_m=32, tile_k=8)
        assert engine.verify_trace(workloads)
        assert engine.verify_trace(workloads, max_tiles=4)


class TestSimulatorIntegration:
    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_simulator_results_backend_independent(self, backend, vgg_trace):
        from repro.arch.simulator import ProsperitySimulator

        baseline = ProsperitySimulator(
            max_tiles_per_workload=6, rng=np.random.default_rng(1)
        ).simulate(vgg_trace)
        report = ProsperitySimulator(
            max_tiles_per_workload=6,
            rng=np.random.default_rng(1),
            backend=backend,
        ).simulate(vgg_trace)
        assert report.cycles == pytest.approx(baseline.cycles)
        assert report.energy_pj == pytest.approx(baseline.energy_pj)

    def test_shared_engine_across_simulators(self, vgg_trace):
        from repro.arch.config import DEFAULT_CONFIG
        from repro.arch.simulator import ProsperitySimulator

        engine = ProsperityEngine(
            backend="vectorized",
            tile_m=DEFAULT_CONFIG.tile_m,
            tile_k=DEFAULT_CONFIG.tile_k,
        )
        first = ProsperitySimulator(engine=engine).simulate(vgg_trace)
        hits_before = engine.cache.hits
        second = ProsperitySimulator(engine=engine).simulate(vgg_trace)
        assert second.cycles == pytest.approx(first.cycles)
        # The second simulator re-used the first one's cached tiles.
        assert engine.cache.hits > hits_before

    def test_sweep_accepts_backend(self, vgg_trace):
        from repro.analysis.sweep import sweep_tile_sizes

        m_ref, k_ref = sweep_tile_sizes(
            [vgg_trace], m_values=(64,), k_values=(16,), max_tiles=4,
            rng=np.random.default_rng(2), backend="reference",
        )
        m_vec, k_vec = sweep_tile_sizes(
            [vgg_trace], m_values=(64,), k_values=(16,), max_tiles=4,
            rng=np.random.default_rng(2), backend="vectorized",
        )
        assert m_ref[0].product_density == pytest.approx(m_vec[0].product_density)
        assert k_ref[0].latency_vs_bit == pytest.approx(k_vec[0].latency_vs_bit)


class TestCliRun:
    def test_cli_run_command(self, capsys):
        from repro.cli import main

        assert main(
            [
                "run", "--model", "lenet5", "--dataset", "mnist",
                "--backend", "vectorized", "--batch", "4", "--verify",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "tiles/sec" in out
        assert "bit-identical" in out

    def test_cli_run_reference_backend(self, capsys):
        from repro.cli import main

        assert main(
            ["run", "--model", "lenet5", "--dataset", "mnist",
             "--backend", "reference", "--batch", "1"]
        ) == 0
        assert "backend=reference" in capsys.readouterr().out
