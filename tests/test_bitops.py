"""Unit tests for the bit-manipulation primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.utils.bitops import (
    bit_scan_forward,
    bits_to_int,
    int_to_bits,
    is_subset,
    iterate_set_bits,
    pack_rows,
    popcount_rows,
    subset_matrix,
    unpack_rows,
)

bool_matrices = hnp.arrays(
    dtype=bool,
    shape=st.tuples(st.integers(1, 20), st.integers(1, 40)),
)


class TestPackUnpack:
    def test_roundtrip_simple(self):
        bits = np.array([[1, 0, 1], [0, 1, 1]], dtype=bool)
        assert (unpack_rows(pack_rows(bits), 3) == bits).all()

    def test_packed_width(self):
        bits = np.zeros((4, 17), dtype=bool)
        assert pack_rows(bits).shape == (4, 3)

    def test_trailing_bits_zero(self):
        bits = np.ones((2, 5), dtype=bool)
        packed = pack_rows(bits)
        # bits 5..7 of the byte must be zero
        assert ((packed[:, 0] & 0b00000111) == 0).all()

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            pack_rows(np.array([1, 0, 1], dtype=bool))

    def test_unpack_rejects_too_wide(self):
        packed = pack_rows(np.zeros((2, 8), dtype=bool))
        with pytest.raises(ValueError):
            unpack_rows(packed, 9)

    @given(bool_matrices)
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, bits):
        k = bits.shape[1]
        assert (unpack_rows(pack_rows(bits), k) == bits).all()


class TestPopcount:
    def test_counts(self):
        bits = np.array([[1, 1, 0, 1], [0, 0, 0, 0]], dtype=bool)
        assert popcount_rows(pack_rows(bits)).tolist() == [3, 0]

    def test_wide_rows(self):
        bits = np.ones((1, 100), dtype=bool)
        assert popcount_rows(pack_rows(bits)).tolist() == [100]

    @given(bool_matrices)
    @settings(max_examples=50, deadline=None)
    def test_matches_numpy_sum(self, bits):
        counts = popcount_rows(pack_rows(bits))
        assert (counts == bits.sum(axis=1)).all()


class TestSubsetMatrix:
    def test_identity_diagonal(self):
        bits = np.array([[1, 0], [0, 1]], dtype=bool)
        subset = subset_matrix(pack_rows(bits))
        assert subset[0, 0] and subset[1, 1]
        assert not subset[0, 1] and not subset[1, 0]

    def test_proper_subset(self):
        bits = np.array([[1, 1, 0], [1, 0, 0]], dtype=bool)
        subset = subset_matrix(pack_rows(bits))
        assert subset[0, 1]      # row1 ⊆ row0
        assert not subset[1, 0]  # row0 ⊄ row1

    def test_empty_row_subset_of_all(self):
        bits = np.array([[0, 0], [1, 1]], dtype=bool)
        subset = subset_matrix(pack_rows(bits))
        assert subset[1, 0]  # empty ⊆ anything

    @given(bool_matrices)
    @settings(max_examples=40, deadline=None)
    def test_matches_set_semantics(self, bits):
        subset = subset_matrix(pack_rows(bits))
        m = bits.shape[0]
        sets = [set(np.flatnonzero(row)) for row in bits]
        for i in range(m):
            for j in range(m):
                assert subset[i, j] == (sets[j] <= sets[i])


class TestIsSubset:
    def test_true_case(self):
        a = pack_rows(np.array([[1, 0, 0, 1]], dtype=bool))[0]
        b = pack_rows(np.array([[1, 1, 0, 1]], dtype=bool))[0]
        assert is_subset(a, b)
        assert not is_subset(b, a)

    def test_equal_rows(self):
        a = pack_rows(np.array([[1, 0, 1]], dtype=bool))[0]
        assert is_subset(a, a)


class TestIntEncoding:
    def test_roundtrip(self):
        bits = np.array([1, 0, 1, 1, 0], dtype=bool)
        assert (int_to_bits(bits_to_int(bits), 5) == bits).all()

    def test_bit_zero_is_col_zero(self):
        assert bits_to_int(np.array([1, 0, 0], dtype=bool)) == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    @given(st.integers(0, 2**30 - 1))
    def test_int_roundtrip(self, value):
        assert bits_to_int(int_to_bits(value, 30)) == value


class TestBitScanForward:
    def test_first_bit(self):
        assert bit_scan_forward(np.array([0, 0, 1, 1], dtype=bool)) == 2

    def test_empty(self):
        assert bit_scan_forward(np.zeros(8, dtype=bool)) == -1

    def test_iterate_order(self):
        bits = np.array([0, 1, 0, 1, 1], dtype=bool)
        assert iterate_set_bits(bits) == [1, 3, 4]
